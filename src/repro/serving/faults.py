"""Deterministic fault injection for the serving fleet.

Compiled-plan embedding is fully deterministic, so every failure mode
the fleet supervisor handles — a worker killed mid-batch, a batch that
raises, a batch that stalls — is *safely re-executable*: retrying a
lost batch cannot change any answer.  Proving that in tests needs the
failures themselves to be deterministic, which is what a
:class:`FaultPlan` provides: a picklable list of :class:`FaultSpec`
triggers threaded through :func:`repro.serving.fleet._worker_main` (and
re-threaded into every worker the supervisor respawns), each firing at
an exact, replayable point in the serving schedule instead of at the
whim of a ``kill`` from a racing shell.

Three fault kinds cover the failure matrix:

- ``"kill"`` — the worker process dies abruptly (``SIGKILL`` to
  itself: no cleanup, no goodbye — the same observable as an OOM kill
  or segfault).  ``when="before"`` kills with the batch claimed but
  unserved (the supervisor must requeue it); ``when="after"`` kills
  once the result is already on the queue (respawn without retry).
- ``"delay"`` — the worker sleeps ``seconds`` before (or after)
  serving the batch: the deterministic stand-in for a straggler, used
  to exercise the frontend's per-batch deadline.
- ``"fail"`` — the worker raises :class:`InjectedFault` instead of
  serving: the typed application-level failure, exercising the
  bounded-retry path without killing anything.

Selectors (``worker_id`` / ``batch_id`` / ``task_index`` / ``attempt``)
are conjunctive; ``None`` matches anything.  ``attempt`` defaults to
``1`` so a fault fires only on a batch's *first* execution — the retry
of the very batch it broke then runs clean, which is what makes
kill/retry tests converge instead of kill-looping.  (A respawned worker
receives a fresh copy of the plan, so one-shot behavior cannot live in
mutable plan state; it lives in the attempt selector.)
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

__all__ = ["FaultPlan", "FaultSpec", "InjectedFault"]

_KINDS = ("kill", "delay", "fail")
_WHENS = ("before", "after")


class InjectedFault(RuntimeError):
    """The exception a ``"fail"`` fault raises inside the worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic trigger (see module docstring).

    All selectors must match for the spec to fire; ``None`` selectors
    match anything.  ``task_index`` is the worker-local 1-based count of
    tasks it has taken off the queue — the selector to use when the
    batch→worker assignment is what the test controls (single-worker
    fleets), while ``batch_id`` selects the frontend's global dispatch
    id regardless of which worker picks it up.
    """

    kind: str
    worker_id: int | None = None
    batch_id: int | None = None
    task_index: int | None = None
    attempt: int | None = 1
    when: str = "before"
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}, "
                             f"got {self.kind!r}")
        if self.when not in _WHENS:
            raise ValueError(f"fault when must be one of {_WHENS}, "
                             f"got {self.when!r}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def matches(self, worker_id: int, batch_id: int, task_index: int,
                attempt: int, when: str) -> bool:
        return (self.when == when
                and (self.worker_id is None or self.worker_id == worker_id)
                and (self.batch_id is None or self.batch_id == batch_id)
                and (self.task_index is None
                     or self.task_index == task_index)
                and (self.attempt is None or self.attempt == attempt))


@dataclass
class FaultPlan:
    """An ordered, picklable set of :class:`FaultSpec` triggers.

    Built fluently (each helper returns the plan)::

        plan = (FaultPlan()
                .delay(batch_id=2, seconds=0.1)
                .kill(batch_id=3))           # whoever serves batch 3 dies

    The plan crosses the process boundary at worker spawn (and respawn)
    time, so it must stay a plain picklable value — no callables.
    """

    specs: list[FaultSpec] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def kill(self, **selectors) -> "FaultPlan":
        """Die abruptly (self-``SIGKILL``) at the selected point."""
        return self.add(FaultSpec("kill", **selectors))

    def delay(self, seconds: float, **selectors) -> "FaultPlan":
        """Sleep ``seconds`` at the selected point (the straggler)."""
        return self.add(FaultSpec("delay", seconds=seconds, **selectors))

    def fail(self, message: str = "injected fault",
             **selectors) -> "FaultPlan":
        """Raise :class:`InjectedFault` instead of serving the batch."""
        return self.add(FaultSpec("fail", message=message, **selectors))

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------
    def apply(self, worker_id: int, batch_id: int, task_index: int,
              attempt: int, when: str) -> None:
        """Fire every matching spec, in plan order.

        Called inside the worker process around each task.  Delays
        sleep, fails raise, kills never return — a kill is delivered as
        ``SIGKILL`` to the worker's own pid, exactly the observable of
        an external ``kill -9``.
        """
        for spec in self.specs:
            if not spec.matches(worker_id, batch_id, task_index,
                                attempt, when):
                continue
            if spec.kind == "delay":
                time.sleep(spec.seconds)
            elif spec.kind == "fail":
                raise InjectedFault(
                    f"{spec.message} (worker {worker_id}, batch {batch_id}, "
                    f"attempt {attempt})")
            else:   # kill
                os.kill(os.getpid(), signal.SIGKILL)
