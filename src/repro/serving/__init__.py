"""``repro.serving`` — the unified embedding-serving subsystem.

The production-facing API over everything the execution engine
(:mod:`repro.core.engine`) and the compiled-plan machinery
(:mod:`repro.nn.compile` / :mod:`repro.nn.plancache`) provide:

- :class:`EmbedRequest` / :class:`EmbedResponse` — the typed request
  schema (city views + dtype + optional region subset in; embeddings +
  plan/bucket/padding provenance out);
- :class:`EmbeddingService` — a facade owning one shared model and one
  plan cache, routing every request through a shape-bucket scheduler
  (:class:`ShapeBucketScheduler`) with a max-wait/max-batch flush
  policy (:class:`FlushPolicy`);
- :class:`WarmupPack` — deploy-time pre-recorded plan grids, so a fresh
  service performs zero record epochs on warmed shapes;
- :class:`ServingFrontend` / :class:`FrontendClient` — the network
  layer: an asyncio NDJSON socket server with admission control,
  per-bucket backpressure (load shedding with a ``retry_after`` hint)
  and p50/p99 latency accounting, dispatching scheduler co-batches to
- :class:`ServingFleet` — N worker processes, each holding a resident
  service warmed from a shared :class:`WarmupPack` (zero record epochs
  on start, plan caches preserved across graceful restarts), under a
  supervisor that detects crashes, retries the exact lost batches and
  respawns dead workers against the same pack;
- :class:`AdmissionError` — the typed submit-time rejection
  (``oversize`` / ``view_mismatch`` / ``overload``) — and
  :class:`ServingUnavailable`, its post-admission counterpart (fleet
  down, retries exhausted, deadline missed);
- :class:`FaultPlan` — the deterministic fault-injection harness the
  chaos tests drive (kill/delay/fail selected batches in selected
  workers);
- :func:`serving_scheduler_report` — the throughput benchmark payload
  (uniform traffic vs the direct batched path, ragged traffic vs
  sequential serving).

The legacy entry points — :func:`repro.core.engine.batched_embed`,
:func:`repro.core.engine.sequential_embed` and
:func:`repro.experiments.common.compute_embeddings` — are thin
deprecated shims over this package.
"""

from .api import (
    AdmissionError,
    EmbedRequest,
    EmbedResponse,
    EmbedTicket,
    FlushPolicy,
    ServingUnavailable,
    default_bucket_edges,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from .faults import FaultPlan, FaultSpec, InjectedFault
from .fleet import FleetResult, ServingFleet
from .frontend import FrontendClient, FrontendThread, ServingFrontend
from .report import serving_scheduler_report
from .scheduler import BucketKey, ShapeBucketScheduler
from .service import EmbeddingService
from .warmup import WarmupPack, default_shape_grid

__all__ = [
    "AdmissionError",
    "EmbedRequest",
    "EmbedResponse",
    "EmbedTicket",
    "FlushPolicy",
    "ServingUnavailable",
    "default_bucket_edges",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "BucketKey",
    "ShapeBucketScheduler",
    "EmbeddingService",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "FleetResult",
    "ServingFleet",
    "FrontendClient",
    "FrontendThread",
    "ServingFrontend",
    "WarmupPack",
    "default_shape_grid",
    "serving_scheduler_report",
]
