"""Multi-process serving fleet: N resident :class:`EmbeddingService`\\ s.

One :class:`ServingFleet` owns ``n_workers`` OS processes.  Each worker
builds its own service from a picklable ``builder`` callable, attaches
the shared :class:`~repro.serving.warmup.WarmupPack` (when given) so it
performs **zero record epochs** on start, then loops on a shared task
queue: take one dispatched batch (a list of
:class:`~repro.serving.api.EmbedRequest`\\ s that the frontend's
shape-bucket scheduler already grouped), run it through the resident
service, and push the :class:`~repro.serving.api.EmbedResponse`\\ s back
on the result queue.

Design notes
------------

- **The frontend batches, the workers execute.**  A dispatched group is
  exactly one scheduler bucket's ``take()`` — every request in it shares
  a bucket in the worker's own scheduler too (same
  :class:`~repro.serving.api.FlushPolicy`), so ``service.run`` serves
  the group as the *same single* ``(b, n, d)`` pass an in-process
  service would have used.  That is what makes fleet responses
  bit-identical to :meth:`EmbeddingService.run` on the same trace.
- **The shared task queue load-balances.**  Any idle worker picks up
  the next batch; there is no per-worker routing state to rebalance.
- **Plan caches live on disk and survive restarts.**  Workers point
  their plan cache at ``pack_dir``; anything they record beyond the
  warmed grid is persisted there, so :meth:`restart` (and a full
  process bounce) starts the next fleet just as warm.
- Every result carries the worker's cumulative
  :data:`~repro.nn.RECORD_STATS` total, so a frontend can *prove* the
  fleet never paid a record epoch (the ``serving-smoke`` CI assertion).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from .api import EmbedRequest, EmbedResponse

__all__ = ["FleetResult", "ServingFleet"]

#: batch_id of the handshake result each worker sends once its resident
#: service is built (and warmed) — before any traffic is accepted.
READY = -1


@dataclass
class FleetResult:
    """One message on the fleet's result queue.

    ``batch_id == READY`` is the start-up handshake; otherwise it echoes
    the id passed to :meth:`ServingFleet.submit`.  ``responses`` is
    ``None`` iff the worker failed (``error`` then carries the
    traceback).  ``record_epochs`` is the worker's cumulative record
    count — 0 forever on a properly warmed fleet.
    """

    batch_id: int
    worker_id: int
    responses: list[EmbedResponse] | None = None
    error: str | None = None
    record_epochs: int = 0


def _worker_main(worker_id: int, builder: Callable, builder_args: tuple,
                 pack_dir, task_queue, result_queue) -> None:
    """Worker process entry point: build, warm, handshake, serve."""
    from ..nn import RECORD_STATS
    from .warmup import WarmupPack
    try:
        service = builder(*builder_args)
        if pack_dir is not None:
            WarmupPack.load(pack_dir).attach(service)
        # Building the model is not serving: only record epochs paid for
        # *traffic* count against the warm path.
        RECORD_STATS.reset()
    except Exception:
        result_queue.put(FleetResult(READY, worker_id,
                                     error=traceback.format_exc()))
        return
    result_queue.put(FleetResult(READY, worker_id))
    while True:
        task = task_queue.get()
        if task is None:
            return
        batch_id, requests = task
        try:
            responses = service.run(requests)
            result_queue.put(FleetResult(batch_id, worker_id,
                                         responses=responses,
                                         record_epochs=RECORD_STATS.total))
        except Exception:
            result_queue.put(FleetResult(batch_id, worker_id,
                                         error=traceback.format_exc(),
                                         record_epochs=RECORD_STATS.total))


class ServingFleet:
    """A pool of worker processes, each holding one resident service.

    Parameters
    ----------
    builder:
        Zero-side-effect callable returning a fresh
        :class:`EmbeddingService`; runs inside each worker process.
        Must be picklable under the chosen start method (a module-level
        function; ``fork`` also accepts closures).
    builder_args:
        Positional arguments for ``builder``.
    n_workers:
        Fleet size.
    pack_dir:
        Shared :class:`WarmupPack` directory each worker attaches on
        start (also becomes the workers' persistent plan-cache
        directory).  ``None`` skips warm-up — workers then pay record
        epochs for every cold shape.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast start, closure-friendly) and ``spawn``
        elsewhere.
    """

    def __init__(self, builder: Callable, builder_args: Sequence = (), *,
                 n_workers: int = 2, pack_dir=None,
                 start_method: str | None = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.builder = builder
        self.builder_args = tuple(builder_args)
        self.n_workers = n_workers
        self.pack_dir = Path(pack_dir) if pack_dir is not None else None
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)
        self._processes: list = []
        self._task_queue = None
        self._result_queue = None
        #: Latest cumulative record-epoch count seen per worker id.
        self.record_epochs: dict[int, int] = {}
        self.dispatched = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._processes)

    def alive(self) -> list[bool]:
        return [p.is_alive() for p in self._processes]

    def start(self, timeout: float = 120.0) -> None:
        """Spawn the workers and block until every one handshakes ready
        (i.e. its resident service is built and warmed)."""
        if self.started:
            raise RuntimeError("fleet already started")
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self.record_epochs = {}
        for worker_id in range(self.n_workers):
            process = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, self.builder, self.builder_args,
                      self.pack_dir, self._task_queue, self._result_queue),
                daemon=True,
                name=f"repro-serving-worker-{worker_id}")
            process.start()
            self._processes.append(process)
        ready = 0
        while ready < self.n_workers:
            try:
                result = self._result_queue.get(timeout=timeout)
            except queue_mod.Empty:
                self.stop(graceful=False)
                raise TimeoutError(
                    f"only {ready}/{self.n_workers} workers became ready "
                    f"within {timeout}s") from None
            if result.batch_id != READY:   # pragma: no cover - defensive
                continue
            if result.error is not None:
                self.stop(graceful=False)
                raise RuntimeError(
                    f"worker {result.worker_id} failed to start:\n"
                    f"{result.error}")
            self.record_epochs[result.worker_id] = result.record_epochs
            ready += 1

    def submit(self, batch_id: int, requests: list[EmbedRequest]) -> None:
        """Queue one scheduler-grouped batch for the next idle worker."""
        if not self.started:
            raise RuntimeError("fleet not started")
        self._task_queue.put((batch_id, list(requests)))
        self.dispatched += 1

    def next_result(self, timeout: float | None = None) -> FleetResult:
        """Block for the next finished batch (``queue.Empty`` on
        timeout).  Updates :attr:`record_epochs` as a side effect."""
        result = self._result_queue.get(timeout=timeout)
        self.record_epochs[result.worker_id] = result.record_epochs
        return result

    def total_record_epochs(self) -> int:
        """Record epochs paid across the fleet since start — the number
        the warm-path smoke asserts is zero."""
        return sum(self.record_epochs.values())

    # ------------------------------------------------------------------
    def stop(self, graceful: bool = True, timeout: float = 10.0) -> None:
        """Shut the workers down.

        ``graceful`` sends one sentinel per worker so each finishes its
        in-flight batch first; stragglers (and ``graceful=False``) are
        terminated.  The on-disk plan cache under ``pack_dir`` is
        untouched either way — that is the restart-preserving contract.
        """
        if not self.started:
            return
        if graceful:
            for _ in self._processes:
                try:
                    self._task_queue.put(None)
                except (ValueError, OSError):   # pragma: no cover
                    break
        for process in self._processes:
            process.join(timeout=timeout if graceful else 0.1)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._processes = []
        self._task_queue = None
        self._result_queue = None

    def restart(self, timeout: float = 120.0) -> None:
        """Graceful stop + fresh start.  With a ``pack_dir`` the new
        workers re-attach the on-disk plan cache and come up just as
        warm — zero record epochs across the bounce."""
        self.stop(graceful=True)
        self.start(timeout=timeout)

    def __enter__(self) -> "ServingFleet":
        if not self.started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop(graceful=True)
