"""Multi-process serving fleet: N resident :class:`EmbeddingService`\\ s,
supervised.

One :class:`ServingFleet` owns ``n_workers`` OS processes.  Each worker
builds its own service from a picklable ``builder`` callable, attaches
the shared :class:`~repro.serving.warmup.WarmupPack` (when given) so it
performs **zero record epochs** on start, then loops on a shared task
queue: take one dispatched batch (a list of
:class:`~repro.serving.api.EmbedRequest`\\ s that the frontend's
shape-bucket scheduler already grouped), run it through the resident
service, and push the :class:`~repro.serving.api.EmbedResponse`\\ s back
on the result queue.

Design notes
------------

- **The frontend batches, the workers execute.**  A dispatched group is
  exactly one scheduler bucket's ``take()`` — every request in it shares
  a bucket in the worker's own scheduler too (same
  :class:`~repro.serving.api.FlushPolicy`), so ``service.run`` serves
  the group as the *same single* ``(b, n, d)`` pass an in-process
  service would have used.  That is what makes fleet responses
  bit-identical to :meth:`EmbeddingService.run` on the same trace.
- **The shared task queue load-balances.**  Any idle worker picks up
  the next batch; there is no per-worker routing state to rebalance.
- **Plan caches live on disk and survive restarts.**  Workers point
  their plan cache at ``pack_dir``; anything they record beyond the
  warmed grid is persisted there, so :meth:`restart` (and a full
  process bounce) starts the next fleet just as warm.
- Every result carries the worker's cumulative
  :data:`~repro.nn.RECORD_STATS` total, so a frontend can *prove* the
  fleet never paid a record epoch (the ``serving-smoke`` CI assertion).

Supervision
-----------

Workers die — OOM kills, segfaults, an operator's ``kill -9`` — and a
fleet that assumes they don't strands every batch the dead worker held:
the frontend future never resolves and the dead slot never refills, so
capacity silently decays to zero.  The supervisor closes that hole:

- **Claims** — before serving a task, a worker announces it on the
  result queue (``FleetResult(claim=True)``), so the supervisor knows
  exactly which ``batch_id``\\ s each worker holds in flight.
- **Crash detection** — :meth:`next_result` doubles as the liveness
  watchdog: whenever the result queue goes quiet (and at a bounded
  interval under load) it sweeps ``alive()``, maps each dead worker to
  its claimed batches, and handles both.
- **Batch retry** — a lost (or failed) batch is requeued with
  ``attempt + 1``, up to ``max_attempts``; beyond that the supervisor
  emits a typed failure result the frontend turns into
  :class:`~repro.serving.api.ServingUnavailable`.  Retry is *safe*
  because compiled-plan embedding is deterministic: re-executing a
  batch is bit-identical to executing it once (the chaos tests assert
  exactly that).  Execution is therefore at-least-once — a worker that
  dies after pushing its result may race a requeue — and the
  per-attempt bookkeeping drops the duplicate.
- **Respawn** — dead workers are respawned *in their slot* (same
  worker id, bumped generation), re-running the same builder and
  re-attaching the same pack directory, so a respawned worker comes up
  exactly as warm as a restarted fleet: zero record epochs.  Respawns
  are bounded by ``max_respawns`` (a crash-looping builder must not
  fork-bomb); once the budget is gone and no worker is live the fleet
  is *fully down* and every outstanding batch fails typed.

A deterministic :class:`~repro.serving.faults.FaultPlan` can be threaded
into every worker (including respawned ones) to reproduce each of these
failure modes in tests without racing a real ``kill``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from .api import EmbedRequest, EmbedResponse
from .faults import FaultPlan

__all__ = ["FleetResult", "ServingFleet"]

#: batch_id of the handshake result each worker sends once its resident
#: service is built (and warmed) — before any traffic is accepted.
READY = -1


@dataclass
class FleetResult:
    """One message on the fleet's result queue.

    ``batch_id == READY`` is the start-up handshake; otherwise it echoes
    the id passed to :meth:`ServingFleet.submit`.  ``claim`` marks the
    "I took this batch" announcement a worker sends before serving it
    (consumed by the supervisor, never returned to callers).
    ``responses`` is ``None`` iff the batch failed (``error`` then
    carries the traceback, or the supervisor's lost-batch message).
    ``attempt`` counts executions of this batch (1 = first try);
    ``generation`` counts respawns of the worker's slot (0 = original).
    ``record_epochs`` is the worker's cumulative record count — 0
    forever on a properly warmed fleet — and ``answered`` its service's
    cumulative response count (the per-worker stats plumbing).
    """

    batch_id: int
    worker_id: int
    responses: list[EmbedResponse] | None = None
    error: str | None = None
    record_epochs: int = 0
    attempt: int = 1
    generation: int = 0
    claim: bool = False
    answered: int = 0


@dataclass
class _Outstanding:
    """Supervisor-side record of one dispatched, unanswered batch."""

    batch_id: int
    requests: list
    attempt: int = 1
    claimed_by: int | None = None


def _worker_main(worker_id: int, generation: int, builder: Callable,
                 builder_args: tuple, pack_dir, task_queue, result_queue,
                 fault_plan: FaultPlan | None = None) -> None:
    """Worker process entry point: build, warm, handshake, serve."""
    from ..nn import RECORD_STATS
    from .warmup import WarmupPack
    try:
        service = builder(*builder_args)
        if pack_dir is not None:
            WarmupPack.load(pack_dir).attach(service)
        # Building the model is not serving: only record epochs paid for
        # *traffic* count against the warm path.
        RECORD_STATS.reset()
    except Exception:
        result_queue.put(FleetResult(READY, worker_id, generation=generation,
                                     error=traceback.format_exc()))
        return
    result_queue.put(FleetResult(READY, worker_id, generation=generation))
    task_index = 0
    while True:
        task = task_queue.get()
        if task is None:
            return
        batch_id, attempt, requests = task
        task_index += 1
        # Claim before serving: if this process dies mid-batch, the
        # supervisor knows exactly which batch_id it takes down with it.
        result_queue.put(FleetResult(batch_id, worker_id, claim=True,
                                     attempt=attempt, generation=generation))
        try:
            if fault_plan is not None:
                fault_plan.apply(worker_id, batch_id, task_index, attempt,
                                 "before")
            responses = service.run(requests)
            result_queue.put(FleetResult(batch_id, worker_id,
                                         responses=responses,
                                         record_epochs=RECORD_STATS.total,
                                         attempt=attempt,
                                         generation=generation,
                                         answered=service.answered))
            if fault_plan is not None:
                fault_plan.apply(worker_id, batch_id, task_index, attempt,
                                 "after")
        except Exception:
            result_queue.put(FleetResult(batch_id, worker_id,
                                         error=traceback.format_exc(),
                                         record_epochs=RECORD_STATS.total,
                                         attempt=attempt,
                                         generation=generation,
                                         answered=service.answered))


class ServingFleet:
    """A supervised pool of worker processes, each holding one resident
    service.

    Parameters
    ----------
    builder:
        Zero-side-effect callable returning a fresh
        :class:`EmbeddingService`; runs inside each worker process.
        Must be picklable under the chosen start method (a module-level
        function; ``fork`` also accepts closures).
    builder_args:
        Positional arguments for ``builder``.
    n_workers:
        Fleet size.
    pack_dir:
        Shared :class:`WarmupPack` directory each worker attaches on
        start (also becomes the workers' persistent plan-cache
        directory).  ``None`` skips warm-up — workers then pay record
        epochs for every cold shape.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (fast start, closure-friendly) and ``spawn``
        elsewhere.
    max_attempts:
        Executions one batch may consume (first try included) before
        the supervisor emits a typed failure instead of requeueing.
    respawn_workers:
        Whether dead workers are respawned in their slot (warm
        re-attach).  ``False`` lets tests observe a decaying fleet.
    max_respawns:
        Total respawn budget across the fleet's lifetime — the
        crash-loop bound.
    fault_plan:
        Optional deterministic :class:`FaultPlan` threaded into every
        worker, respawned ones included (test harness only).
    """

    def __init__(self, builder: Callable, builder_args: Sequence = (), *,
                 n_workers: int = 2, pack_dir=None,
                 start_method: str | None = None, max_attempts: int = 3,
                 respawn_workers: bool = True, max_respawns: int = 8,
                 fault_plan: FaultPlan | None = None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        self.builder = builder
        self.builder_args = tuple(builder_args)
        self.n_workers = n_workers
        self.pack_dir = Path(pack_dir) if pack_dir is not None else None
        self.max_attempts = max_attempts
        self.respawn_workers = respawn_workers
        self.max_respawns = max_respawns
        self.fault_plan = fault_plan
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)
        self._processes: list = []
        self._generations: list[int] = []
        self._task_queue = None
        self._result_queue = None
        #: Guards the supervisor's shared state: ``submit``/``forget``
        #: run on the frontend's event-loop thread while
        #: ``next_result``'s supervision sweep runs on the pump thread.
        self._lock = threading.Lock()
        self._outstanding: dict[int, _Outstanding] = {}
        self._failed: deque = deque()
        self._handled_dead: set[int] = set()
        self._last_sweep = 0.0
        #: Latest cumulative record-epoch count seen per worker id.
        self.record_epochs: dict[int, int] = {}
        #: Latest cumulative service response count seen per worker id.
        self.worker_answered: dict[int, int] = {}
        self.dispatched = 0
        self.crashes = 0
        self.retries = 0
        self.respawns = 0
        self.failed_batches = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._processes)

    def alive(self) -> list[bool]:
        return [p is not None and p.is_alive() for p in self._processes]

    def live_workers(self) -> int:
        return sum(self.alive())

    def pids(self) -> list[int | None]:
        """Current worker pids by slot (the chaos smoke's kill targets)."""
        return [p.pid if p is not None else None for p in self._processes]

    @property
    def fully_down(self) -> bool:
        """No live worker and no respawn budget left: nothing queued or
        in flight can ever be served — the typed-failure condition."""
        return (self.started and self.live_workers() == 0
                and not (self.respawn_workers
                         and self.respawns < self.max_respawns))

    def _spawn(self, worker_id: int, generation: int):
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, generation, self.builder, self.builder_args,
                  self.pack_dir, self._task_queue, self._result_queue,
                  self.fault_plan),
            daemon=True,
            name=f"repro-serving-worker-{worker_id}.{generation}")
        process.start()
        return process

    def start(self, timeout: float = 120.0) -> None:
        """Spawn the workers and block until every one handshakes ready
        (i.e. its resident service is built and warmed).

        ``timeout`` bounds the **whole** handshake, not each worker's:
        the deadline is fixed once, and every queue wait gets only the
        remaining budget — ``n_workers`` slow builders cannot stretch
        the wait to ``n_workers × timeout``.
        """
        if self.started:
            raise RuntimeError("fleet already started")
        if self.pack_dir is not None:
            from .warmup import WarmupPack
            if not WarmupPack.exists(self.pack_dir):
                raise FileNotFoundError(
                    f"no warm-up pack manifest under {self.pack_dir}; build "
                    f"one with WarmupPack.build (or pass pack_dir=None)")
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self.record_epochs = {}
        self.worker_answered = {}
        self._outstanding = {}
        self._failed.clear()
        self._handled_dead = set()
        self._generations = [0] * self.n_workers
        for worker_id in range(self.n_workers):
            self._processes.append(self._spawn(worker_id, 0))
        deadline = time.monotonic() + timeout
        ready = 0
        while ready < self.n_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.stop(graceful=False)
                raise TimeoutError(
                    f"only {ready}/{self.n_workers} workers became ready "
                    f"within {timeout}s")
            try:
                result = self._result_queue.get(timeout=remaining)
            except queue_mod.Empty:
                self.stop(graceful=False)
                raise TimeoutError(
                    f"only {ready}/{self.n_workers} workers became ready "
                    f"within {timeout}s") from None
            if result.batch_id != READY:   # pragma: no cover - defensive
                continue
            if result.error is not None:
                self.stop(graceful=False)
                raise RuntimeError(
                    f"worker {result.worker_id} failed to start:\n"
                    f"{result.error}")
            self.record_epochs[result.worker_id] = result.record_epochs
            ready += 1

    def submit(self, batch_id: int, requests: list[EmbedRequest]) -> None:
        """Queue one scheduler-grouped batch for the next idle worker."""
        if not self.started:
            raise RuntimeError("fleet not started")
        requests = list(requests)
        with self._lock:
            self._outstanding[batch_id] = _Outstanding(batch_id, requests)
        self._task_queue.put((batch_id, 1, requests))
        self.dispatched += 1

    def forget(self, batch_id: int) -> None:
        """Drop a batch from supervision (the frontend's deadline path):
        a result that eventually arrives for it is silently discarded,
        and a crash can no longer trigger its requeue."""
        with self._lock:
            self._outstanding.pop(batch_id, None)

    # ------------------------------------------------------------------
    # Result pump + supervision
    # ------------------------------------------------------------------
    def next_result(self, timeout: float | None = None) -> FleetResult:
        """Block for the next finished batch (``queue.Empty`` on
        timeout).

        This is also the supervision heartbeat: claim messages are
        absorbed into the in-flight map, worker-error results are
        requeued while attempts remain (the caller never sees a retried
        failure), and whenever the queue goes quiet — or at least every
        0.25 s under load — :meth:`supervise` sweeps for dead workers,
        requeues their lost batches and respawns their slots.  Callers
        therefore only ever see terminal results: a served batch, or a
        typed failure that exhausted its attempts.
        """
        if not self.started:
            raise queue_mod.Empty
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        while True:
            with self._lock:
                if self._failed:
                    return self._failed.popleft()
            if time.monotonic() - self._last_sweep > 0.25:
                self.supervise()
                continue
            wait = 0.05
            if deadline is not None:
                wait = min(wait, deadline - time.monotonic())
                if wait <= 0:
                    self.supervise()
                    with self._lock:
                        if self._failed:
                            return self._failed.popleft()
                    raise queue_mod.Empty
            try:
                result = self._result_queue.get(timeout=wait)
            except queue_mod.Empty:
                self.supervise()
                continue
            terminal = self._absorb(result)
            if terminal is not None:
                return terminal

    def _absorb(self, result: FleetResult) -> FleetResult | None:
        """Fold one queue message into supervisor state; return it only
        if it is terminal (served, or failed for good)."""
        current_gen = (result.worker_id < len(self._generations)
                       and self._generations[result.worker_id]
                       == result.generation)
        if result.batch_id == READY:
            if result.error is None and current_gen:
                self.record_epochs[result.worker_id] = result.record_epochs
            # A failed (re)spawn leaves a dead process behind; the next
            # supervision sweep sees it and spends respawn budget on it.
            return None
        if result.claim:
            with self._lock:
                out = self._outstanding.get(result.batch_id)
                if out is None or out.attempt != result.attempt:
                    return None
                if current_gen and result.worker_id not in self._handled_dead:
                    out.claimed_by = result.worker_id
                    return None
                # Claimed by a worker that is already known-dead (its
                # death was handled before this claim surfaced): the
                # batch is lost right now, not at the next crash.
                return self._lost_batch_locked(out, result.worker_id)
        with self._lock:
            out = self._outstanding.get(result.batch_id)
            if out is None or out.attempt != result.attempt:
                return None   # late duplicate of a retried/forgotten batch
            if result.error is not None:
                terminal = self._lost_batch_locked(out, result.worker_id,
                                                   error=result.error)
            else:
                self._outstanding.pop(result.batch_id, None)
                terminal = result
        if current_gen:
            self.record_epochs[result.worker_id] = result.record_epochs
            self.worker_answered[result.worker_id] = result.answered
        return terminal

    def _lost_batch_locked(self, out: _Outstanding, worker_id: int,
                           error: str | None = None) -> FleetResult | None:
        """Requeue a lost/failed batch, or fail it typed once attempts
        are exhausted (or nothing is left to serve it).  Caller holds
        the lock; returns the terminal failure result, if any."""
        if out.attempt < self.max_attempts and not self.fully_down:
            out.attempt += 1
            out.claimed_by = None
            self.retries += 1
            self._task_queue.put((out.batch_id, out.attempt, out.requests))
            return None
        self._outstanding.pop(out.batch_id, None)
        self.failed_batches += 1
        reason = error if error is not None else "worker died mid-batch"
        return FleetResult(
            out.batch_id, worker_id, attempt=out.attempt,
            error=f"batch {out.batch_id} failed after {out.attempt} "
                  f"attempt(s): {reason}")

    def supervise(self) -> None:
        """One liveness sweep: detect dead workers, requeue their
        claimed batches, respawn their slots (budget permitting), and
        fail everything outstanding once the fleet is fully down."""
        self._last_sweep = time.monotonic()
        if not self.started:
            return
        for worker_id, process in enumerate(self._processes):
            if process is None or process.is_alive():
                continue
            if worker_id in self._handled_dead:
                continue
            process.join(timeout=0)   # reap
            self.crashes += 1
            self._handled_dead.add(worker_id)
            with self._lock:
                lost = [out for out in self._outstanding.values()
                        if out.claimed_by == worker_id]
                for out in lost:
                    failure = self._lost_batch_locked(out, worker_id)
                    if failure is not None:
                        self._failed.append(failure)
            if self.respawn_workers and self.respawns < self.max_respawns:
                self.respawns += 1
                self._generations[worker_id] += 1
                self._processes[worker_id] = self._spawn(
                    worker_id, self._generations[worker_id])
                self._handled_dead.discard(worker_id)
        if self.fully_down:
            with self._lock:
                for out in list(self._outstanding.values()):
                    failure = self._lost_batch_locked(out, -1)
                    if failure is not None:
                        self._failed.append(failure)

    def claims(self) -> dict[int, int]:
        """``batch_id -> worker_id`` for every claimed in-flight batch
        (how the chaos smoke targets its external ``kill -9`` at the
        worker that is provably mid-batch)."""
        with self._lock:
            return {out.batch_id: out.claimed_by
                    for out in self._outstanding.values()
                    if out.claimed_by is not None}

    def total_record_epochs(self) -> int:
        """Record epochs paid across the fleet since start — the number
        the warm-path smoke asserts is zero."""
        return sum(self.record_epochs.values())

    def supervision_report(self) -> dict:
        """Crash/retry/respawn counters plus the live in-flight picture
        — the ``stats()`` payload the frontend surfaces."""
        with self._lock:
            outstanding = len(self._outstanding)
        return {
            "live": self.live_workers(),
            "crashes": self.crashes,
            "retries": self.retries,
            "respawns": self.respawns,
            "max_respawns": self.max_respawns,
            "failed_batches": self.failed_batches,
            "max_attempts": self.max_attempts,
            "outstanding": outstanding,
            "fully_down": self.fully_down,
            "fault_specs": len(self.fault_plan) if self.fault_plan else 0,
        }

    # ------------------------------------------------------------------
    def stop(self, graceful: bool = True, timeout: float = 10.0) -> None:
        """Shut the workers down.

        ``graceful`` sends one sentinel per worker so each finishes its
        in-flight batch first; stragglers (and ``graceful=False``) are
        terminated.  The on-disk plan cache under ``pack_dir`` is
        untouched either way — that is the restart-preserving contract.
        """
        if not self.started:
            return
        if graceful:
            for _ in self._processes:
                try:
                    self._task_queue.put(None)
                except (ValueError, OSError):   # pragma: no cover
                    break
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=timeout if graceful else 0.1)
        for process in self._processes:
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._processes = []
        self._generations = []
        self._task_queue = None
        self._result_queue = None
        self._handled_dead = set()
        with self._lock:
            self._outstanding = {}
            self._failed.clear()

    def restart(self, timeout: float = 120.0) -> None:
        """Graceful stop + fresh start.  With a ``pack_dir`` the new
        workers re-attach the on-disk plan cache and come up just as
        warm — zero record epochs across the bounce."""
        self.stop(graceful=True)
        self.start(timeout=timeout)

    def __enter__(self) -> "ServingFleet":
        if not self.started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop(graceful=True)
