"""Typed request/response layer of the serving API.

An :class:`EmbedRequest` describes one city's embedding demand — its
views, the embedding dtype the caller wants back, and an optional region
subset.  The :class:`~repro.serving.service.EmbeddingService` answers it
with an :class:`EmbedResponse` carrying the embeddings plus full
provenance: which shape bucket served it, whether the compiled plan was
a cache hit or paid a record epoch, how much padding the co-batch
wasted, and the wall-clock split between queue wait and compute.

:class:`FlushPolicy` is the scheduler's knob set: bucket edges quantize
``n_regions`` into co-batching groups, ``max_batch`` caps how many
requests one flush fuses into a single ``(b, n, d)`` pass, and
``max_wait`` bounds how long a queued request may age before
:meth:`~repro.serving.service.EmbeddingService.poll` flushes its bucket
regardless of fill.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..data.city import SyntheticCity
from ..data.features import ViewSet

__all__ = [
    "EmbedRequest",
    "EmbedResponse",
    "EmbedTicket",
    "FlushPolicy",
    "default_bucket_edges",
]

_REQUEST_IDS = itertools.count(1)


def default_bucket_edges(n_max: int) -> tuple[int, ...]:
    """Halving grid ``(…, n_max/4, n_max/2, n_max)``: ragged traffic is
    grouped with requests within 2x of its size, while full-size
    requests keep a dedicated bucket for the unpadded fast path."""
    if n_max < 1:
        raise ValueError(f"n_max must be >= 1, got {n_max}")
    edges = [n_max]
    while edges[-1] > 8:
        edges.append(edges[-1] // 2)
    return tuple(sorted(edges))


@dataclass(frozen=True)
class FlushPolicy:
    """Scheduler flush knobs (see module docstring)."""

    max_batch: int = 8
    max_wait: float = 0.05
    bucket_edges: tuple[int, ...] | None = None   # None -> halving grid

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.bucket_edges is not None:
            edges = tuple(sorted(int(e) for e in self.bucket_edges))
            if not edges or edges[0] < 1:
                raise ValueError(f"bucket edges must be positive, got {edges}")
            object.__setattr__(self, "bucket_edges", edges)


class EmbedRequest:
    """One city's embedding demand.

    Parameters
    ----------
    views:
        The city's :class:`~repro.data.features.ViewSet` (or a
        :class:`~repro.data.city.SyntheticCity`, whose ``views()`` are
        taken).  View names must match the service's; region count and
        view widths may be smaller (the scheduler pads them).
    dtype:
        dtype of the returned embeddings; also a co-batching key — the
        scheduler never fuses requests of different dtypes into one
        batch.  ``None`` means the service's model dtype.
    region_subset:
        Optional region indices to return (in the requested order); the
        full city still flows through the model — attention is global —
        but the response carries only these rows.
    name:
        Label for provenance; defaults to the city's name when the
        request was built from a :class:`SyntheticCity`.
    """

    def __init__(self, views: "ViewSet | SyntheticCity",
                 dtype: "np.dtype | str | None" = None,
                 region_subset: Sequence[int] | None = None,
                 name: str = ""):
        if isinstance(views, SyntheticCity):
            name = name or views.name
            views = views.views()
        self.views = views
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.region_subset = (None if region_subset is None
                              else [int(i) for i in region_subset])
        if self.region_subset is not None:
            bad = [i for i in self.region_subset
                   if not 0 <= i < views.n_regions]
            if bad:
                raise ValueError(
                    f"region_subset indices {bad} out of range for a city "
                    f"with {views.n_regions} regions")
        self.name = name
        self.request_id = next(_REQUEST_IDS)

    @property
    def n_regions(self) -> int:
        return self.views.n_regions

    def __repr__(self) -> str:
        return (f"EmbedRequest(id={self.request_id}, name={self.name!r}, "
                f"n={self.n_regions}, dtype={self.dtype})")


@dataclass
class EmbedResponse:
    """Embeddings plus provenance for one served request.

    ``plan_event`` records how the compiled plan behind the serving
    batch was obtained: ``"hit"`` (live resident plan), ``"spec"``
    (relowered from a cached spec, no record), ``"disk"`` (spec loaded
    from the on-disk cache, no record), ``"record"`` (paid a record
    epoch) or ``"eager"`` (service running uncompiled).
    ``padding_waste`` is the padded fraction of the batch that served
    this request: ``1 − Σ n_i / (b · n_max)``.
    """

    request_id: int
    name: str
    embeddings: np.ndarray
    bucket_id: str
    n_regions: int
    batch_size: int
    padded: bool
    padding_waste: float
    plan_event: str
    wait_seconds: float
    compute_seconds: float


@dataclass
class EmbedTicket:
    """Handle returned by :meth:`EmbeddingService.submit`; ``response``
    is filled when the scheduler flushes the request's bucket.

    ``submitted_at`` is the *scheduling* clock (caller-injectable via
    ``submit(now=...)`` for deterministic max-wait tests);
    ``submitted_mono`` is always ``time.monotonic()`` and is what the
    response's ``wait_seconds`` provenance is measured against, so an
    injected scheduling clock never corrupts the wait accounting.
    """

    request: EmbedRequest
    bucket_id: str
    submitted_at: float
    response: EmbedResponse | None = None
    submitted_mono: float = 0.0

    @property
    def done(self) -> bool:
        return self.response is not None
