"""Typed request/response layer of the serving API.

An :class:`EmbedRequest` describes one city's embedding demand — its
views, the embedding dtype the caller wants back, and an optional region
subset.  The :class:`~repro.serving.service.EmbeddingService` answers it
with an :class:`EmbedResponse` carrying the embeddings plus full
provenance: which shape bucket served it, whether the compiled plan was
a cache hit or paid a record epoch, how much padding the co-batch
wasted, and the wall-clock split between queue wait and compute.

:class:`FlushPolicy` is the scheduler's knob set: bucket edges quantize
``n_regions`` into co-batching groups, ``max_batch`` caps how many
requests one flush fuses into a single ``(b, n, d)`` pass, and
``max_wait`` bounds how long a queued request may age before
:meth:`~repro.serving.service.EmbeddingService.poll` flushes its bucket
regardless of fill.

:class:`AdmissionError` is the typed rejection every admission gate
raises — oversize requests, view mismatches and (at the network
frontend) load shedding — so callers and the wire protocol can
distinguish "this request can never be served" from "retry later"
(``retry_after``).

The ``*_to_wire`` / ``*_from_wire`` functions are the JSON codecs of
the newline-delimited socket protocol (:mod:`repro.serving.frontend`).
Floats cross the wire via ``repr`` (shortest round-trip), so encoded
matrices and embeddings survive the socket **bit-identically**.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from ..data.city import SyntheticCity
from ..data.features import ViewSet

__all__ = [
    "AdmissionError",
    "EmbedRequest",
    "EmbedResponse",
    "EmbedTicket",
    "FlushPolicy",
    "ServingUnavailable",
    "default_bucket_edges",
    "request_from_wire",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
]

_REQUEST_IDS = itertools.count(1)


class AdmissionError(ValueError):
    """A request rejected at an admission gate, before it was queued.

    ``reason`` is a stable machine-readable tag:

    - ``"oversize"`` — ``n_regions`` exceeds the service/frontend
      capacity (or the scheduler's largest bucket edge); the request can
      never be served by this deployment;
    - ``"view_mismatch"`` — view names/widths incompatible with the
      serving model;
    - ``"overload"`` — the target bucket's queue is at its depth limit;
      the request *would* be servable — retry after ``retry_after``
      seconds (the load-shedding hint a frontend turns into a
      ``Retry-After``-style field).

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the untyped rejection keep working.
    """

    def __init__(self, message: str, *, reason: str = "invalid",
                 retry_after: float | None = None):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class ServingUnavailable(RuntimeError):
    """A request that was *admitted* but could not be served.

    The typed counterpart of :class:`AdmissionError` for failures that
    happen after the admission gates: the fleet is fully down (no live
    worker and no respawn budget), a dispatched batch exhausted its
    retry attempts, a batch missed its deadline, or the frontend was
    stopped with the request still in flight.  Unlike an admission
    rejection nothing about the *request* is wrong — the same request
    retried against a healthy deployment serves bit-identically (the
    exact-recovery guarantee the chaos tests assert).

    ``retry_after`` is the load-shedding-style hint: a float when the
    condition is expected to clear (a respawn is in flight, the batch
    deadline passed but the fleet is alive), ``None`` when the
    deployment is gone for good.  It travels the wire as the
    ``"unavailable"`` error tag, which
    :class:`~repro.serving.frontend.FrontendClient` turns back into
    this exception (and optionally retries with backoff).
    """

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


def default_bucket_edges(n_max: int) -> tuple[int, ...]:
    """Halving grid ``(…, n_max/4, n_max/2, n_max)``: ragged traffic is
    grouped with requests within 2x of its size, while full-size
    requests keep a dedicated bucket for the unpadded fast path."""
    if n_max < 1:
        raise ValueError(f"n_max must be >= 1, got {n_max}")
    edges = [n_max]
    while edges[-1] > 8:
        edges.append(edges[-1] // 2)
    return tuple(sorted(edges))


@dataclass(frozen=True)
class FlushPolicy:
    """Scheduler flush knobs (see module docstring)."""

    max_batch: int = 8
    max_wait: float = 0.05
    bucket_edges: tuple[int, ...] | None = None   # None -> halving grid

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")
        if self.bucket_edges is not None:
            edges = tuple(sorted(int(e) for e in self.bucket_edges))
            if not edges or edges[0] < 1:
                raise ValueError(f"bucket edges must be positive, got {edges}")
            object.__setattr__(self, "bucket_edges", edges)


class EmbedRequest:
    """One city's embedding demand.

    Parameters
    ----------
    views:
        The city's :class:`~repro.data.features.ViewSet` (or a
        :class:`~repro.data.city.SyntheticCity`, whose ``views()`` are
        taken).  View names must match the service's; region count and
        view widths may be smaller (the scheduler pads them).
    dtype:
        dtype of the returned embeddings; also a co-batching key — the
        scheduler never fuses requests of different dtypes into one
        batch.  ``None`` means the service's model dtype.
    region_subset:
        Optional region indices to return (in the requested order); the
        full city still flows through the model — attention is global —
        but the response carries only these rows.
    name:
        Label for provenance; defaults to the city's name when the
        request was built from a :class:`SyntheticCity`.
    """

    def __init__(self, views: "ViewSet | SyntheticCity",
                 dtype: "np.dtype | str | None" = None,
                 region_subset: Sequence[int] | None = None,
                 name: str = ""):
        if isinstance(views, SyntheticCity):
            name = name or views.name
            views = views.views()
        self.views = views
        self.dtype = np.dtype(dtype) if dtype is not None else None
        self.region_subset = (None if region_subset is None
                              else [int(i) for i in region_subset])
        if self.region_subset is not None:
            bad = [i for i in self.region_subset
                   if not 0 <= i < views.n_regions]
            if bad:
                raise ValueError(
                    f"region_subset indices {bad} out of range for a city "
                    f"with {views.n_regions} regions")
        self.name = name
        self.request_id = next(_REQUEST_IDS)

    @property
    def n_regions(self) -> int:
        return self.views.n_regions

    def __repr__(self) -> str:
        return (f"EmbedRequest(id={self.request_id}, name={self.name!r}, "
                f"n={self.n_regions}, dtype={self.dtype})")


@dataclass
class EmbedResponse:
    """Embeddings plus provenance for one served request.

    ``plan_event`` records how the compiled plan behind the serving
    batch was obtained: ``"hit"`` (live resident plan), ``"spec"``
    (relowered from a cached spec, no record), ``"disk"`` (spec loaded
    from the on-disk cache, no record), ``"record"`` (paid a record
    epoch) or ``"eager"`` (service running uncompiled).
    ``padding_waste`` is the padded fraction of the batch that served
    this request: ``1 − Σ n_i / (b · n_max)``.
    """

    request_id: int
    name: str
    embeddings: np.ndarray
    bucket_id: str
    n_regions: int
    batch_size: int
    padded: bool
    padding_waste: float
    plan_event: str
    wait_seconds: float
    compute_seconds: float


@dataclass
class EmbedTicket:
    """Handle returned by :meth:`EmbeddingService.submit`; ``response``
    is filled when the scheduler flushes the request's bucket.

    ``submitted_at`` is the service clock (``time.monotonic`` unless the
    service was built with an injected ``clock=``, and caller-overridable
    per call via ``submit(now=...)``).  Age-based flush decisions *and*
    the response's ``wait_seconds`` provenance are both measured on this
    one clock, so a test or replay harness that injects time sees
    consistent waits instead of a mix of fake and real clocks.
    """

    request: EmbedRequest
    bucket_id: str
    submitted_at: float
    response: EmbedResponse | None = None

    @property
    def done(self) -> bool:
        return self.response is not None


# ----------------------------------------------------------------------
# Wire codecs (the NDJSON socket protocol's payload layer)
# ----------------------------------------------------------------------

def _matrix_to_wire(matrix: np.ndarray) -> list:
    # json.dumps renders floats with repr (shortest round-trip), so the
    # nested-list form is lossless for every finite float64.
    return np.asarray(matrix, dtype=np.float64).tolist()


def request_to_wire(request: EmbedRequest) -> dict:
    """Encode a request for the socket protocol (``op: "embed"``).

    Only the serving-relevant fields travel: normalized view matrices,
    dtype, region subset and name.  ``raw`` count matrices are a
    training-loss input and never cross the serving wire.
    """
    return {
        "op": "embed",
        "name": request.name,
        "dtype": str(request.dtype) if request.dtype is not None else None,
        "region_subset": request.region_subset,
        "views": {
            "names": list(request.views.names),
            "matrices": [_matrix_to_wire(m) for m in request.views.matrices],
        },
    }


def request_from_wire(payload: dict) -> EmbedRequest:
    """Decode an ``op: "embed"`` payload back into an :class:`EmbedRequest`.

    Malformed payloads raise :class:`AdmissionError` (``reason
    "bad_request"``) so a frontend can answer with a typed rejection
    instead of a stack trace.
    """
    try:
        views_payload = payload["views"]
        views = ViewSet(
            names=tuple(views_payload["names"]),
            matrices=[np.asarray(m, dtype=np.float64)
                      for m in views_payload["matrices"]])
        return EmbedRequest(views, dtype=payload.get("dtype"),
                            region_subset=payload.get("region_subset"),
                            name=payload.get("name", ""))
    except AdmissionError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise AdmissionError(f"malformed embed payload: {exc}",
                             reason="bad_request") from exc


def response_to_wire(response: EmbedResponse) -> dict:
    """Encode a served response (``ok: true``) for the socket protocol."""
    wire = asdict(response)
    wire["ok"] = True
    # Shape travels explicitly: an empty region subset would otherwise
    # lose its (0, d) embedding width in the nested-list form.
    wire["shape"] = list(response.embeddings.shape)
    wire["dtype"] = str(response.embeddings.dtype)
    wire["embeddings"] = _matrix_to_wire(response.embeddings)
    return wire


def response_from_wire(payload: dict) -> EmbedResponse:
    """Decode an ``ok: true`` payload back into an :class:`EmbedResponse`."""
    fields = {k: payload[k] for k in (
        "request_id", "name", "bucket_id", "n_regions", "batch_size",
        "padded", "padding_waste", "plan_event", "wait_seconds",
        "compute_seconds")}
    embeddings = np.asarray(payload["embeddings"], dtype=np.float64).reshape(
        payload["shape"]).astype(payload["dtype"], copy=False)
    return EmbedResponse(embeddings=embeddings, **fields)
