"""Shape-bucket request scheduler.

Queued :class:`~repro.serving.api.EmbedRequest`\\ s are grouped by
``(n_regions_bucket, view_dims, dtype)`` so each flush fuses requests
that batch well together:

- the bucket at the service's full ``n_max`` holds full-size requests —
  a flush of those is **unpadded** (no keep mask, the compiled fast
  path, one resident plan per batch size);
- smaller buckets hold ragged traffic quantized to halving edges (a
  request lands in the smallest edge ≥ its ``n_regions``), so a flush
  co-batches cities within 2x of each other's size under one padded +
  masked pass.  Every batch is still padded to the *model's* ``n_max``
  — RegionSA's correlation MLP fixes the attention width at
  construction (see :class:`repro.core.intra_afl.RegionSA`) — the
  bucket edge controls *who is co-batched*, which is what makes mask
  patterns (and therefore compiled-plan cache keys) recur under
  repeating traffic;
- ``view_dims`` and ``dtype`` are exact-match keys: requests with
  different native view widths or different requested dtypes are never
  fused into one batch.

Flush triggers (see :class:`~repro.serving.api.FlushPolicy`): a bucket
reaching ``max_batch`` is flushed by ``submit`` itself; a bucket whose
oldest request has waited ``max_wait`` seconds is flushed by the next
``poll``/``submit`` (the service is synchronous — there is no
background thread, so time-based flushes happen at call boundaries);
``flush()`` drains everything.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field

from .api import (
    AdmissionError,
    EmbedRequest,
    EmbedTicket,
    FlushPolicy,
    default_bucket_edges,
)

__all__ = ["BucketKey", "BucketQueue", "ShapeBucketScheduler"]


@dataclass(frozen=True)
class BucketKey:
    """Co-batching identity: quantized region count, native view widths,
    requested dtype."""

    n_bucket: int
    view_dims: tuple[int, ...]
    dtype: str

    @property
    def bucket_id(self) -> str:
        dims = "x".join(str(d) for d in self.view_dims)
        return f"n{self.n_bucket}/d{dims}/{self.dtype}"


@dataclass
class BucketQueue:
    key: BucketKey
    tickets: deque = field(default_factory=deque)

    @property
    def oldest_at(self) -> float | None:
        return self.tickets[0].submitted_at if self.tickets else None


class ShapeBucketScheduler:
    """FIFO queues per :class:`BucketKey` plus the flush-decision logic.

    The scheduler holds tickets only — building the padded batch and
    running the model is the service's job (`take` hands back up to
    ``max_batch`` tickets in submission order).
    """

    def __init__(self, n_max: int, policy: FlushPolicy | None = None,
                 default_dtype: str = "model"):
        self.policy = policy if policy is not None else FlushPolicy()
        #: dtype label for requests that did not ask for one — the
        #: service passes its model dtype so an explicit request for the
        #: model dtype co-batches with default requests.
        self.default_dtype = default_dtype
        edges = self.policy.bucket_edges
        if edges is None:
            edges = default_bucket_edges(n_max)
        if edges[-1] < n_max:
            raise ValueError(f"largest bucket edge {edges[-1]} is below the "
                             f"service n_max {n_max}")
        self.edges = edges
        self._queues: dict[BucketKey, BucketQueue] = {}

    # ------------------------------------------------------------------
    def bucket_edge(self, n_regions: int) -> int:
        """Smallest edge ≥ ``n_regions``; a request *exactly at* an edge
        belongs to that edge's bucket (no off-by-one promotion).

        Out-of-range sizes raise a typed :class:`AdmissionError`
        (reason ``"oversize"``) so the rejection happens at submit time,
        before the request is queued — never mid-flush.
        """
        if n_regions < 1:
            raise AdmissionError(
                f"n_regions must be >= 1, got {n_regions}", reason="oversize")
        if n_regions > self.edges[-1]:
            raise AdmissionError(
                f"request with n={n_regions} exceeds the largest bucket "
                f"edge {self.edges[-1]}", reason="oversize")
        return self.edges[bisect_left(self.edges, n_regions)]

    def key_for_request(self, request: EmbedRequest) -> BucketKey:
        """The bucket a request would land in — usable before a ticket
        exists (the admission-control path needs the key to read queue
        depth without enqueueing)."""
        return BucketKey(self.bucket_edge(request.n_regions),
                         tuple(request.views.dims()),
                         str(request.dtype) if request.dtype is not None
                         else self.default_dtype)

    def key_for(self, ticket: EmbedTicket) -> BucketKey:
        return self.key_for_request(ticket.request)

    def depth(self, key: BucketKey) -> int:
        """Queued tickets in one bucket (0 for an unknown key)."""
        queue = self._queues.get(key)
        return len(queue.tickets) if queue is not None else 0

    # ------------------------------------------------------------------
    def enqueue(self, ticket: EmbedTicket) -> BucketKey:
        key = self.key_for(ticket)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = BucketQueue(key)
        queue.tickets.append(ticket)
        return key

    def take(self, key: BucketKey,
             limit: int | None = None) -> list[EmbedTicket]:
        """Pop up to ``limit`` (default ``max_batch``) tickets, FIFO."""
        queue = self._queues.get(key)
        if queue is None:
            return []
        limit = limit if limit is not None else self.policy.max_batch
        taken = [queue.tickets.popleft()
                 for _ in range(min(limit, len(queue.tickets)))]
        if not queue.tickets:
            del self._queues[key]
        return taken

    def requeue_front(self, key: BucketKey,
                      tickets: list[EmbedTicket]) -> None:
        """Put taken tickets back at the head of their queue (in their
        original order) — the failed-flush recovery path."""
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = BucketQueue(key)
        queue.tickets.extendleft(reversed(tickets))

    def full_buckets(self) -> list[BucketKey]:
        return [key for key, q in self._queues.items()
                if len(q.tickets) >= self.policy.max_batch]

    def overdue_buckets(self, now: float) -> list[BucketKey]:
        return [key for key, q in self._queues.items()
                if q.oldest_at is not None
                and now - q.oldest_at >= self.policy.max_wait]

    def nonempty_buckets(self) -> list[BucketKey]:
        return list(self._queues)

    @property
    def pending(self) -> int:
        return sum(len(q.tickets) for q in self._queues.values())
