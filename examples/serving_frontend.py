"""Frontend quickstart: warm pack -> worker fleet -> NDJSON socket.

The network serving shape for HAFusion embeddings: an asyncio frontend
(:class:`repro.serving.ServingFrontend`) speaking newline-delimited JSON
on a TCP socket, co-batching requests with the shape-bucket scheduler
and dispatching each flushed batch to a fleet of worker processes, each
holding a resident :class:`~repro.serving.EmbeddingService` warmed from
a shared :class:`~repro.serving.WarmupPack`.  The script walks the full
cycle in under a minute:

1. build the deterministic service and its warm-up pack (no training —
   plan specs are value-free, so serving only needs an initialized
   model);
2. start a 2-worker :class:`~repro.serving.ServingFleet` and the socket
   frontend (ephemeral port);
3. fire a mixed burst — ragged sizes, float32 and float64, a region
   subset — through the blocking :class:`~repro.serving.FrontendClient`;
4. read p50/p99 latency, aggregate regions/sec and the fleet's
   record-epoch count (zero: the warm path never records) from the
   ``stats`` op.

Usage::

    python examples/serving_frontend.py [--city chi] [--workers 2]
"""

import argparse
import tempfile

import numpy as np

from repro.core import HAFusionConfig, shard_viewset
from repro.data import available_cities, load_city
from repro.nn import PlanCache
from repro.serving import (
    EmbedRequest,
    EmbeddingService,
    FlushPolicy,
    FrontendThread,
    ServingFleet,
    ServingFrontend,
    WarmupPack,
)

#: High max_wait: the client's trailing ``flush`` op dispatches
#: stragglers, so co-batch compositions are deterministic and identical
#: to the in-process reference below (no wall-clock dependence).
_POLICY = FlushPolicy(max_batch=4, max_wait=60.0)
_ARGS = argparse.Namespace(city="chi", seed=7)


def build_service(plan_cache: PlanCache | None = None) -> EmbeddingService:
    """Module-level worker builder: every fleet process reconstructs the
    same model deterministically from the seed."""
    views = load_city(_ARGS.city, seed=_ARGS.seed).views()
    config = HAFusionConfig.for_city(_ARGS.city, conv_channels=4,
                                     dropout=0.0)
    kwargs = {} if plan_cache is None else {"plan_cache": plan_cache}
    return EmbeddingService.build([views], config, seed=_ARGS.seed,
                                  policy=_POLICY, **kwargs)


def make_requests() -> list[EmbedRequest]:
    """The mixed burst: ragged shards, dtype-mixed, one region subset."""
    views = load_city(_ARGS.city, seed=_ARGS.seed).views()
    requests = [EmbedRequest(shard, name=f"shard-{i}",
                             dtype="float32" if i % 2 else None)
                for i, shard in enumerate(shard_viewset(views, 5))]
    requests.append(EmbedRequest(views, name=_ARGS.city,
                                 region_subset=[0, 5, 9]))
    return requests


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="chi", choices=available_cities())
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--pack-dir", default=None,
                        help="warm-up pack directory (default: a tempdir)")
    args = parser.parse_args()
    _ARGS.city, _ARGS.seed = args.city, args.seed

    pack_dir = args.pack_dir or tempfile.mkdtemp(prefix="repro-frontend-")
    print(f"Building warm-up pack for {args.city!r} under {pack_dir} ...")
    service = build_service(PlanCache(directory=pack_dir))
    pack = WarmupPack.build(service)
    # Replaying the burst in-process records its exact co-batch mask
    # patterns into the pack directory (the fleet then never records)
    # and gives us the reference the socket path must match bit-for-bit.
    reference = service.run(make_requests())
    print(f"  {len(pack.shapes)} grid shapes + the burst's compositions "
          f"pre-recorded")

    print(f"\nStarting {args.workers}-worker fleet + socket frontend ...")
    fleet = ServingFleet(build_service, n_workers=args.workers,
                         pack_dir=pack_dir)
    frontend = ServingFrontend(fleet, n_max=service.n_max,
                               view_dims=service.view_dims,
                               view_names=service.view_names,
                               policy=_POLICY)
    with FrontendThread(frontend) as thread:
        print(f"  listening on {frontend.host}:{frontend.port}")
        requests = make_requests()
        with thread.client() as client:
            print(f"\nFiring {len(requests)} mixed requests through the "
                  f"socket ...")
            responses = client.embed_many(requests)
            for response in responses[:4]:
                print(f"  {response.name:10s} n={response.n_regions:3d} "
                      f"bucket={response.bucket_id} "
                      f"batch={response.batch_size} "
                      f"plan={response.plan_event} "
                      f"|h|={np.linalg.norm(response.embeddings):.2f}")
            stats = client.stats()

    latency = stats["latency"]
    print(f"\nFrontend report: {stats['served']} served, "
          f"{stats['regions']} regions, "
          f"{stats['regions_per_sec']:.0f} regions/s")
    print(f"  latency p50 {latency['p50_latency'] * 1e3:.1f}ms, "
          f"p99 {latency['p99_latency'] * 1e3:.1f}ms "
          f"(mean {latency['mean_seconds'] * 1e3:.1f}ms over "
          f"{latency['count']} requests)")
    print(f"  fleet: {stats['fleet']['n_workers']} workers, "
          f"{stats['fleet']['dispatched']} batches dispatched, "
          f"record epochs paid: {stats['fleet']['record_epochs']}")
    print(f"  supervision: {stats['fleet']['live']}/"
          f"{stats['fleet']['n_workers']} live, "
          f"{stats['fleet']['crashes']} crashes, "
          f"{stats['fleet']['retries']} retries, "
          f"{stats['fleet']['respawns']} respawns")
    assert stats["fleet"]["record_epochs"] == 0, "warm path recorded!"
    identical = all(np.array_equal(got.embeddings, want.embeddings)
                    for got, want in zip(responses, reference))
    assert identical, "socket embeddings drifted from in-process serving"
    print("  socket responses bit-identical to in-process serving ✓")


if __name__ == "__main__":
    main()
