"""Site selection: find regions most similar to a thriving restaurant's.

The paper's motivating example (Sec. I): "if the manager of a well-run
restaurant in a particular region is considering expanding to new
locations, utilizing region embeddings can assist in identifying the
most comparable regions for this new venture."

This script (1) learns region embeddings, (2) picks the region with the
most restaurant POIs as the flagship location, (3) ranks the other
regions by embedding cosine similarity, and (4) sanity-checks the
ranking against the latent ground truth (functional mixture similarity)
that the synthetic city exposes.

Usage::

    python examples/site_selection.py [--city nyc] [--top 5]
"""

import argparse

import numpy as np

from repro.core import HAFusionConfig, train_hafusion
from repro.data import POI_CATEGORIES, load_city
from repro.nn.tensor import use_dtype


def cosine_rank(embeddings: np.ndarray, anchor: int) -> np.ndarray:
    """Regions sorted by cosine similarity to the anchor (self excluded)."""
    unit = embeddings / np.maximum(np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-12)
    similarity = unit @ unit[anchor]
    order = np.argsort(-similarity)
    return order[order != anchor]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="chi")
    parser.add_argument("--top", type=int, default=5)
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    city = load_city(args.city, seed=args.seed)
    restaurant_column = POI_CATEGORIES.index("restaurant")
    flagship = int(city.poi_counts[:, restaurant_column].argmax())
    print(f"Flagship region: #{flagship} "
          f"({city.poi_counts[flagship, restaurant_column]:.0f} restaurants, "
          f"dominant function: "
          f"{city.latent.archetypes[city.latent.functionality[flagship].argmax()]})")

    config = HAFusionConfig.for_city(args.city, epochs=args.epochs)
    with use_dtype(np.float32):
        model, _ = train_hafusion(city, config, seed=args.seed)
        embeddings = model.embed(city.views())

    ranked = cosine_rank(embeddings, flagship)
    print(f"\nTop {args.top} candidate regions for expansion:")
    for rank, region in enumerate(ranked[: args.top], start=1):
        f = city.latent.functionality[region]
        print(f"  {rank}. region #{region:3d}  restaurants={city.poi_counts[region, restaurant_column]:4.0f}  "
              f"dominant={city.latent.archetypes[f.argmax()]:13s}  "
              f"inflow={city.mobility.inflow()[region]:10.0f}")

    # Sanity check against latent ground truth: the embedding-recommended
    # regions should be functionally closer to the flagship than random.
    truth = city.latent.functionality
    target = truth[flagship]
    recommended = ranked[: args.top]
    rest = ranked[args.top:]
    sim_recommended = (truth[recommended] @ target).mean()
    sim_rest = (truth[rest] @ target).mean()
    print(f"\nLatent functional similarity to the flagship:")
    print(f"  recommended regions: {sim_recommended:.4f}")
    print(f"  all other regions:   {sim_rest:.4f}")
    verdict = "PASS" if sim_recommended > sim_rest else "WEAK"
    print(f"  [{verdict}] recommendations are functionally closer than average")


if __name__ == "__main__":
    main()
