"""Bring your own views: HAFusion as a generic multi-view fusion library.

HAFusion is not tied to the paper's three views (Sec. IV-A: "a generic
framework to learn region embeddings with multiple (not necessarily our
three) input features"). This example fabricates a fourth view — a
"noise complaints by hour-of-day" profile — adds it to the standard
three, and shows the model trains end-to-end and reports the learned
per-view fusion weights.

Usage::

    python examples/custom_views.py
"""

import numpy as np

from repro.core import HAFusion, HAFusionConfig, train_model
from repro.data import ViewSet, load_city, normalize_counts
from repro.nn.tensor import use_dtype


def build_noise_view(city, rng: np.random.Generator) -> np.ndarray:
    """A synthetic 24-dim 'noise complaints per hour' profile per region.

    Nightlife-heavy regions complain at night; residential ones in the
    evening — so the view genuinely carries functional signal.
    """
    hours = np.arange(24)
    night = np.exp(-0.5 * ((hours - 23.0) / 2.5) ** 2) + np.exp(-0.5 * (hours / 2.0) ** 2)
    evening = np.exp(-0.5 * ((hours - 19.0) / 2.0) ** 2)
    ent = city.latent.archetype_share("entertainment")[:, None]
    res = city.latent.archetype_share("residential")[:, None]
    intensity = 40.0 * (ent * night[None, :] + res * evening[None, :]) + 0.5
    return rng.poisson(intensity).astype(float)


def main() -> None:
    rng = np.random.default_rng(11)
    city = load_city("chi", seed=11)
    base = city.views()

    noise_counts = build_noise_view(city, rng)
    views = ViewSet(
        names=base.names + ("noise",),
        matrices=base.matrices + [normalize_counts(noise_counts)],
        raw=base.raw + [noise_counts],
    )
    print(f"views: {views.names} with dims {views.dims()}")

    config = HAFusionConfig.for_city("chi", epochs=80)
    with use_dtype(np.float32):
        model = HAFusion(views.dims(), views.n_regions, config,
                         mobility_view=0, rng=np.random.default_rng(11))
        history = train_model(model, views, log_every=20)
        embeddings = model.embed(views)

    print(f"\ntrained on {model.n_views} views in {history.seconds:.1f}s; "
          f"embeddings {embeddings.shape}")
    weights = model.fusion.view_weights
    if weights is not None:
        for name, weight in zip(views.names, weights):
            print(f"  fusion weight {name:10s} {weight:.3f}")
    print(f"  HALearning blend beta = {model.halearning.beta:.3f}")


if __name__ == "__main__":
    main()
