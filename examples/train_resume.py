"""Crash-safe training quickstart: checkpoint, crash, resume — bit-identically.

The paper's schedule is 2,500 full-batch epochs per city (Sec. VI-A) —
hours on CPU that a crash, OOM kill or preemption would throw away.
This example turns on :mod:`repro.train.checkpoint` (PR 9), simulates a
crash mid-run with the deterministic training fault harness, resumes
from disk, and verifies the resumed run reproduces an uninterrupted
reference **exactly** (``max|Δ| = 0`` on the final embeddings).

Usage::

    python examples/train_resume.py

The same three keyword arguments work on :func:`repro.core.train_model`,
:meth:`repro.core.BatchedTrainer.train` and (via ``REPRO_CHECKPOINT_DIR``)
the experiment runners::

    train_hafusion(city, config,
                   checkpoint_dir="ckpts/chi",  # where checkpoints live
                   checkpoint_every=50,         # epochs between snapshots
                   resume=True)                 # continue if any exist

On a real deployment there is no fault plan — SIGTERM/SIGINT already
checkpoint-and-exit cleanly (:class:`repro.train.TrainingPreempted`),
and an abrupt ``kill -9`` simply resumes from the newest intact
checkpoint on the next run.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import HAFusionConfig, train_hafusion
from repro.data import load_city
from repro.train import InjectedTrainFault, TrainFaultPlan


def main() -> None:
    city = load_city("nyc", seed=7)
    # A short schedule so the example runs in seconds; the mechanics are
    # identical at 2,500 epochs.
    config = HAFusionConfig.for_city("nyc", epochs=40, conv_channels=4)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="hafusion-ckpt-"))

    print("== uninterrupted reference ==")
    reference_model, reference = train_hafusion(city, config, seed=7,
                                                compiled=True, log_every=10)
    reference_embeddings = reference_model.embed(city.views())

    print("== training with checkpoints, crashing at epoch 25 ==")
    crash = TrainFaultPlan().fail(epoch=25, when="before_step")
    try:
        train_hafusion(city, config, seed=7, compiled=True,
                       checkpoint_dir=checkpoint_dir, checkpoint_every=10,
                       fault_plan=crash)
    except InjectedTrainFault as exc:
        print(f"crashed as scripted: {exc}")

    print("== resuming from disk ==")
    model, history = train_hafusion(city, config, seed=7, compiled=True,
                                    checkpoint_dir=checkpoint_dir,
                                    checkpoint_every=10, resume=True,
                                    fault_plan=crash, log_every=10)
    report = history.resume_report
    print(f"resumed at epoch {report['resume_epoch']} "
          f"(attempt {report['attempt']}), wall-clock saved: "
          f"{report['wall_clock_saved_seconds']:.2f}s, checkpoints on disk: "
          f"{report['retained_epochs']}")

    embeddings = model.embed(city.views())
    max_diff = float(np.abs(embeddings - reference_embeddings).max())
    losses_equal = history.losses == reference.losses
    print(f"loss curves identical: {losses_equal}; "
          f"final embeddings max|Δ| = {max_diff}")
    assert losses_equal and max_diff == 0.0
    print("resume was bit-identical to never having crashed.")


if __name__ == "__main__":
    main()
