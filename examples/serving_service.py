"""Serving quickstart: warm-up pack -> EmbeddingService -> mixed-city traffic.

The production serving shape for HAFusion embeddings: one shared
multi-city model behind an :class:`repro.serving.EmbeddingService`,
whose shape-bucket scheduler co-batches compatible requests into single
``(b, n, d)`` compiled-plan replays.  The script walks the full deploy
cycle in under a minute:

1. train one shared model on region shards of a city (the multi-city
   engine from ``repro.core.engine``);
2. build a :class:`~repro.serving.WarmupPack` — pre-record the
   scheduler's ``(batch, n)`` plan grid to disk;
3. "restart": attach the pack to a fresh service and serve mixed-size
   requests with **zero** record epochs on warmed shapes;
4. print the per-bucket throughput / padding / plan-residency report.

Usage::

    python examples/serving_service.py [--city chi] [--epochs 40]
"""

import argparse
import tempfile

import numpy as np

from repro.core import HAFusionConfig, BatchedTrainer, shard_viewset
from repro.data import available_cities, load_city
from repro.nn import RECORD_STATS, PlanCache
from repro.serving import (
    EmbedRequest,
    EmbeddingService,
    FlushPolicy,
    WarmupPack,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="chi", choices=available_cities())
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--pack-dir", default=None,
                        help="warm-up pack directory (default: a tempdir)")
    args = parser.parse_args()

    print(f"Generating synthetic city {args.city!r} (seed={args.seed}) ...")
    city = load_city(args.city, seed=args.seed)
    # Region shards stand in for a fleet of small cities sharing one
    # model; mixed shard counts make the serving traffic ragged.
    shards = shard_viewset(city.views(), 6) + shard_viewset(city.views(), 9)
    config = HAFusionConfig.for_city(args.city, epochs=args.epochs,
                                     conv_channels=8, dropout=0.0)

    print(f"Training one shared model on 6 of the {len(shards)} region "
          f"shards ({args.epochs} epochs) ...")
    trainer = BatchedTrainer(shards[:6], config, seed=args.seed, compiled=True)
    history = trainer.train(log_every=max(1, args.epochs // 4))
    print(f"  done in {history.seconds:.1f}s; final loss "
          f"{history.final_loss:.3f}")

    pack_dir = args.pack_dir or tempfile.mkdtemp(prefix="repro-warmup-")
    policy = FlushPolicy(max_batch=4, max_wait=60.0)
    service = EmbeddingService(trainer.model, n_max=trainer.batch.n_max,
                               view_dims=trainer.batch.view_dims,
                               view_names=trainer.batch.view_names,
                               policy=policy,
                               plan_cache=PlanCache(directory=pack_dir))

    print(f"\nBuilding warm-up pack under {pack_dir} ...")
    # The grid covers the scheduler's steady state; playing the ragged
    # traffic sample through once records its exact mask patterns too,
    # so the restarted service never records.
    pack = WarmupPack.build(service, traffic=shards)
    print(f"  {len(pack.shapes)} (batch, n) shapes pre-recorded: "
          + ", ".join(f"{s['batch_size']}x{max(s['n_regions'])}"
                      for s in pack.shapes))

    print("\nRestarting: fresh service + pack, serving mixed-size traffic ...")
    fresh = EmbeddingService(trainer.model, n_max=trainer.batch.n_max,
                             view_dims=trainer.batch.view_dims,
                             view_names=trainer.batch.view_names,
                             policy=policy)
    WarmupPack.load(pack_dir).attach(fresh)
    RECORD_STATS.reset()
    requests = [EmbedRequest(vs, name=f"shard-{i}")
                for i, vs in enumerate(shards)]
    responses = fresh.run(requests)
    print(f"  {len(responses)} responses; record epochs paid: "
          f"{RECORD_STATS.total}")
    for response in responses[:4]:
        print(f"  {response.name:10s} n={response.n_regions:3d} "
              f"bucket={response.bucket_id} batch={response.batch_size} "
              f"plan={response.plan_event} "
              f"waste={response.padding_waste:.0%} "
              f"|h|={np.linalg.norm(response.embeddings):.2f}")

    stats = fresh.stats()
    print(f"\nService report: {stats['regions']} regions in "
          f"{stats['batches']} batches, padding overhead "
          f"{stats['padding_overhead']:.0%}, "
          f"{stats['regions_per_sec']:.0f} regions/s")
    print(f"  plan cache: {stats['plan_cache']}")
    for bucket_id, bucket in stats["buckets"].items():
        print(f"  {bucket_id}: {bucket['requests']} reqs in "
              f"{bucket['batches']} batches, "
              f"{bucket['regions_per_sec']:.0f} regions/s, "
              f"events {bucket['plan_events']}")


if __name__ == "__main__":
    main()
