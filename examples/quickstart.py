"""Quickstart: learn region embeddings for a city and predict crime counts.

Runs in about a minute on a laptop CPU (small training budget for the
demo; see ``python -m repro.experiments`` for paper-scale runs).

Usage::

    python examples/quickstart.py [--city chi] [--epochs 120]
"""

import argparse

import numpy as np

from repro.core import HAFusionConfig, train_hafusion
from repro.data import available_cities, load_city
from repro.eval import evaluate_all_tasks
from repro.nn.tensor import use_dtype


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="chi", choices=available_cities())
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Generating synthetic city {args.city!r} (seed={args.seed}) ...")
    city = load_city(args.city, seed=args.seed)
    for key, value in city.summary().items():
        print(f"  {key:20s} {value:,}")

    print(f"\nTraining HAFusion for {args.epochs} epochs ...")
    config = HAFusionConfig.for_city(args.city, epochs=args.epochs)
    with use_dtype(np.float32):
        model, history = train_hafusion(city, config, seed=args.seed,
                                        log_every=max(1, args.epochs // 6))
        embeddings = model.embed(city.views())
    print(f"  done in {history.seconds:.1f}s; "
          f"loss {history.losses[0]:.2f} -> {history.final_loss:.2f}")
    print(f"  embeddings: {embeddings.shape}, learned view weights: "
          f"{np.round(model.fusion.view_weights, 3) if hasattr(model.fusion, 'view_weights') else 'n/a'}")

    print("\nDownstream evaluation (Lasso alpha=1, 10-fold CV):")
    for task, result in evaluate_all_tasks(embeddings, city).items():
        print(f"  {task:13s} MAE {result.mae:10.1f}  RMSE {result.rmse:10.1f}  "
              f"R2 {result.metrics.format('r2')}")


if __name__ == "__main__":
    main()
