"""Compare HAFusion against all four baselines on one city.

A miniature of the paper's Table III: trains MVURE, MGFN, RegionDCL,
HREP and HAFusion on the same synthetic city and reports check-in /
crime / service-call R².

Usage::

    python examples/model_comparison.py [--city chi] [--epochs 120]
"""

import argparse

import numpy as np

from repro.baselines import make_baseline, train_baseline
from repro.core import HAFusionConfig, train_hafusion
from repro.data import load_city
from repro.eval import TASKS, evaluate_embeddings, format_table
from repro.nn.tensor import use_dtype


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="chi")
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    city = load_city(args.city, seed=args.seed)
    print(f"City {args.city}: {city.n_regions} regions, "
          f"{int(city.mobility.total_trips):,} trips\n")

    rows = []
    with use_dtype(np.float32):
        for name in ("mvure", "mgfn", "region_dcl", "hrep"):
            model = make_baseline(name, city, seed=args.seed)
            result = train_baseline(model, epochs=args.epochs)
            embeddings = model.embed()
            scores = [evaluate_embeddings(embeddings, city, task).r2 for task in TASKS]
            rows.append([name, f"{result.seconds:.1f}s"] + [f"{s:.3f}" for s in scores])
            print(f"trained {name:11s} ({result.seconds:5.1f}s)")

        config = HAFusionConfig.for_city(args.city, epochs=args.epochs)
        model, history = train_hafusion(city, config, seed=args.seed)
        embeddings = model.embed(city.views())
        scores = [evaluate_embeddings(embeddings, city, task).r2 for task in TASKS]
        rows.append(["hafusion", f"{history.seconds:.1f}s"] + [f"{s:.3f}" for s in scores])
        print(f"trained {'hafusion':11s} ({history.seconds:5.1f}s)\n")

    print(format_table(["model", "train"] + [f"{t}:R2" for t in TASKS], rows,
                       title=f"Model comparison on {args.city} "
                             f"({args.epochs} epochs each — use more for paper-scale numbers)"))


if __name__ == "__main__":
    main()
