"""Bench: regenerate Table VII (#RegionFusion layers, NYC).

Smoke profile sweeps a reduced layer set; the quick-profile CLI run in
EXPERIMENTS.md covers 1-5.
"""

from bench_utils import run_once

from repro.experiments import run_experiment


def test_table7_layers(benchmark):
    payload, table = run_once(benchmark, run_experiment, "table7",
                              profile="smoke", layer_counts=(1, 3, 5))
    print("\n" + table)
    assert set(payload["results"]) == {1, 3, 5}
