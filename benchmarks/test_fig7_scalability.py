"""Bench: regenerate Fig. 7 (scaling in #regions).

The bench sweeps 180 and 360 regions (the 720/1440 expansions take tens
of minutes of training each on CPU; regenerate them with
``python -m repro.experiments fig7 --profile quick``). The runtime-growth
shape — every model slower at 2x regions — is asserted here.

The payload's ``engine`` section times the batched multi-city execution
engine (``repro.core.engine``) against the per-city Python loop on
region shards of the largest city: the fused ``(b, n, d)`` pass must
match the sequential path to ≤1e-8 and be at least 2x faster; the
measured numbers are recorded in the pytest-benchmark JSON via
``extra_info``.
"""

import os

from bench_utils import run_once

from repro.experiments import run_experiment


def test_fig7_scalability(benchmark):
    payload, table = run_once(benchmark, run_experiment, "fig7",
                              profile="smoke", sizes=("nyc", "nyc_360"))
    print("\n" + table)
    for model in payload["models"]:
        small = payload["runtime"][model]["nyc"]
        large = payload["runtime"][model]["nyc_360"]
        assert small > 0 and large > 0
    assert payload["region_counts"]["nyc_360"] == 360

    engine = payload["engine"]
    benchmark.extra_info["engine"] = engine
    assert engine["batch_size"] >= 3
    assert engine["max_abs_diff"] <= 1e-8
    # Shared CI runners relax the wall-clock gate (noisy neighbors).
    gate = float(os.environ.get("REPRO_ENGINE_SPEEDUP_GATE", "2.0"))
    assert engine["speedup"] >= gate, (
        f"batched engine only {engine['speedup']:.2f}x faster than the "
        f"per-city loop (sequential {engine['sequential_seconds']:.3f}s, "
        f"batched {engine['batched_seconds']:.3f}s)")
