"""Bench: regenerate Fig. 7 (scaling in #regions).

The bench sweeps 180 and 360 regions (the 720/1440 expansions take tens
of minutes of training each on CPU; regenerate them with
``python -m repro.experiments fig7 --profile quick``). The runtime-growth
shape — every model slower at 2x regions — is asserted here.
"""

from bench_utils import run_once

from repro.experiments import run_experiment


def test_fig7_scalability(benchmark):
    payload, table = run_once(benchmark, run_experiment, "fig7",
                              profile="smoke", sizes=("nyc", "nyc_360"))
    print("\n" + table)
    for model in payload["models"]:
        small = payload["runtime"][model]["nyc"]
        large = payload["runtime"][model]["nyc_360"]
        assert small > 0 and large > 0
    assert payload["region_counts"]["nyc_360"] == 360
