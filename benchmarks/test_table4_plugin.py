"""Bench: regenerate Table IV (DAFusion plugged into MGFN/MVURE/HREP)."""

from bench_utils import run_once

from repro.experiments import run_experiment


def test_table4_plugin(benchmark):
    payload, table = run_once(benchmark, run_experiment, "table4",
                              profile="smoke")
    print("\n" + table)
    for base, variants in payload["results"].items():
        assert set(variants) == {base, f"{base}-dafusion"}
        for per_task in variants.values():
            assert set(per_task) == {"checkin", "crime", "service_call"}
