"""Helpers shared by the benchmark modules."""


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a heavy pipeline exactly once (no warmup rounds)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
