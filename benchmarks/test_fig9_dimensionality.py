"""Bench: regenerate Fig. 9 (embedding dimensionality sweep, NYC).

The bench sweeps d ∈ {36, 144}; the full {36, 72, 96, 144, 288} sweep is
the quick-profile CLI run recorded in EXPERIMENTS.md.
"""

from bench_utils import run_once

from repro.experiments import run_experiment


def test_fig9_dimensionality(benchmark):
    payload, table = run_once(benchmark, run_experiment, "fig9",
                              profile="smoke", dims=(36, 144))
    print("\n" + table)
    for task, per_model in payload["results"].items():
        for model, per_dim in per_model.items():
            assert set(per_dim) == {36, 144}
