"""Bench: regenerate Fig. 8 (population density: Manhattan vs Staten
Island). The structural claim — sparse suburbs have drastically fewer
trips per region — is asserted via the dataset itself; accuracy drops
are recorded in EXPERIMENTS.md from the quick profile.
"""

from bench_utils import run_once

from repro.data import load_city
from repro.experiments import run_experiment


def test_fig8_density(benchmark):
    payload, table = run_once(benchmark, run_experiment, "fig8",
                              profile="smoke")
    print("\n" + table)
    for model in payload["models"]:
        assert set(payload["results"][model]) == {"nyc", "staten_island"}
    dense = load_city("nyc", seed=7)
    sparse = load_city("staten_island", seed=7)
    assert sparse.mobility.total_trips < 1e-3 * dense.mobility.total_trips
