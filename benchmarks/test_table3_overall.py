"""Bench: regenerate Table III (overall prediction accuracy).

Smoke profile (30 epochs/model); run
``python -m repro.experiments table3 --profile quick`` for the numbers
recorded in EXPERIMENTS.md. Shape assertions are the paper's headline
claims, checked on the quick-profile results rather than here (smoke
training is too short for stable orderings — we assert only integrity).
"""

from bench_utils import run_once

from repro.experiments import run_experiment


def test_table3_overall(benchmark):
    payload, table = run_once(benchmark, run_experiment, "table3",
                              profile="smoke")
    print("\n" + table)
    results = payload["results"]
    assert set(results) == {"checkin", "crime", "service_call"}
    for task, cities in results.items():
        for city, models in cities.items():
            assert set(models) == {"mvure", "mgfn", "region_dcl", "hrep", "hafusion"}
            for model, outcome in models.items():
                assert outcome.mae >= 0 and outcome.rmse >= outcome.mae * 0.99
