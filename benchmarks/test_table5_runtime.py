"""Bench: regenerate Table V (embedding learning + downstream time).

Reuses the Table III smoke cache, so the timing columns reflect the
recorded training wall-clock of each model. The structural claim checked
here: HREP's prompt-learning stage makes its downstream evaluation the
slowest of all models in aggregate (the paper's Table V shows the same
ordering; the exact factor depends on how fast the Lasso converges on
each embedding, so only the ordering is asserted).
"""

from bench_utils import run_once

from repro.experiments import run_experiment


def test_table5_runtime(benchmark):
    payload, table = run_once(benchmark, run_experiment, "table5",
                              profile="smoke")
    print("\n" + table)
    downstream = payload["downstream"]
    cities = payload["cities"]
    hrep_total = sum(downstream["hrep"][c] for c in cities)
    for model in payload["models"]:
        if model == "hrep":
            continue
        other_total = sum(downstream[model][c] for c in cities)
        assert hrep_total > other_total, (
            f"HREP prompt learning should make it slower downstream than {model}")
    for model in payload["models"]:
        for city in cities:
            assert payload["training"][model][city] > 0
