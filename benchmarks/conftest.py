"""Shared benchmark configuration.

Experiment benches run the real experiment pipelines with the tiny
``smoke`` profile (30 training epochs) so a full ``pytest benchmarks/
--benchmark-only`` pass stays tractable on a laptop CPU; trained
embeddings are cached under ``.cache/`` so re-runs are fast. Paper-scale
regeneration goes through ``python -m repro.experiments <id> --profile
quick`` (see EXPERIMENTS.md for recorded results).
"""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)


@pytest.fixture(scope="session")
def smoke_profile() -> str:
    return "smoke"
