"""Bench: regenerate Table VI (component ablation, NYC)."""

from bench_utils import run_once

from repro.experiments import run_experiment
from repro.experiments.ablation import ABLATION_VARIANTS


def test_table6_ablation(benchmark):
    payload, table = run_once(benchmark, run_experiment, "table6",
                              profile="smoke")
    print("\n" + table)
    assert set(payload["results"]) == set(ABLATION_VARIANTS)
    for variant, per_task in payload["results"].items():
        assert set(per_task) == {"checkin", "crime", "service_call"}
