"""Serving-service benchmarks: scheduler throughput gates.

Records :func:`repro.serving.serving_scheduler_report` into the
pytest-benchmark JSON (``extra_info["scheduler"]``) and asserts the
ISSUE-5 acceptance gates:

- **uniform traffic**: routing full-size requests through the
  shape-bucket scheduler must not cost throughput against the direct
  ``embed_batch`` path on a prebuilt batch (the two replay the *same*
  resident plan; the scheduler adds only queue bookkeeping and batch
  staging).  Gate: scheduler ≥ 90% of direct
  (``REPRO_SCHEDULER_UNIFORM_GATE``) — the 10% margin absorbs
  wall-clock noise, not real overhead;
- **ragged mixed-city traffic**: co-batching mixed-size shards under
  padded masks must beat sequential (one-request-at-a-time) serving by
  ≥1.5x regions/sec (``REPRO_SCHEDULER_RAGGED_GATE``; measured ≈1.7x
  on a dedicated core), with exact parity (≤1e-8 float64) against the
  sequential reference.

The per-bucket ``regions_per_sec`` gauges inside the payload are diffed
night-over-night by ``scripts/compare_benchmarks.py``.
"""

import os

import pytest

from repro.core import HAFusionConfig
from repro.data import load_city
from repro.serving import serving_scheduler_report


class TestSchedulerBenchmarks:
    def test_scheduler_throughput_nyc(self, benchmark):
        """Uniform + ragged scheduler throughput on NYC (n=180).

        Skipped under ``--benchmark-disable`` (the every-push CI smoke):
        the correctness half — parity, ordering, bucketing — is locked
        down by ``tests/serving/`` in tier-1; only the wall-clock gates
        need timing.
        """
        from bench_utils import run_once

        if not benchmark.enabled:
            pytest.skip("timing-gated benchmark; parity covered in tier-1")
        city = load_city("nyc", seed=7)
        config = HAFusionConfig.for_city("nyc", conv_channels=8)
        report = run_once(benchmark, serving_scheduler_report, city.views(),
                          config, seed=7, max_batch=16, uniform_batch=8,
                          ragged_shard_counts=(12, 18, 25), repeats=3)
        benchmark.extra_info["scheduler"] = report
        print("\nscheduler report:", {k: report[k]
                                      for k in ("uniform", "ragged")})

        ragged = report["ragged"]
        assert ragged["max_abs_diff"] <= 1e-8
        # Sanity on the traffic shape: genuinely ragged, meaningfully
        # co-batched.
        assert len(ragged["sizes"]) >= 3
        assert report["scheduler_stats"]["batches"] \
            < report["scheduler_stats"]["requests"]

        uniform_gate = float(os.environ.get(
            "REPRO_SCHEDULER_UNIFORM_GATE", "0.9"))
        assert report["uniform"]["efficiency"] >= uniform_gate, (
            f"scheduler throughput fell to "
            f"{report['uniform']['efficiency']:.2f}x of the direct "
            f"batched path on uniform traffic "
            f"({report['uniform']['scheduler_regions_per_sec']:.0f} vs "
            f"{report['uniform']['direct_regions_per_sec']:.0f} regions/s)")

        ragged_gate = float(os.environ.get(
            "REPRO_SCHEDULER_RAGGED_GATE", "1.5"))
        assert ragged["speedup"] >= ragged_gate, (
            f"scheduler only {ragged['speedup']:.2f}x sequential serving "
            f"on ragged traffic ({ragged['scheduler_regions_per_sec']:.0f} "
            f"vs {ragged['sequential_regions_per_sec']:.0f} regions/s)")
