"""Bench: regenerate Fig. 6 (input-view ablation, NYC)."""

from bench_utils import run_once

from repro.experiments import run_experiment
from repro.experiments.views import VIEW_VARIANTS


def test_fig6_views(benchmark):
    payload, table = run_once(benchmark, run_experiment, "fig6",
                              profile="smoke")
    print("\n" + table)
    expected = set(VIEW_VARIANTS) | {"MVURE", "HREP"}
    assert set(payload["results"]) == expected
