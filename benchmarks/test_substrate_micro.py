"""Microbenchmarks for the nn substrate and eval primitives.

These measure the building blocks whose costs dominate the experiment
pipelines: attention forward/backward at paper-scale (n = 180, d = 144),
the IntraAFL convolution path, external attention's linear-in-n cost
(the paper's O(n·d·dm) vs O(n²·d) argument, Sec. VI-F), coordinate-
descent Lasso, and synthetic-city generation.
"""

import os

import numpy as np
import pytest

from repro.core import (
    HAFusionConfig,
    backend_speedup_report,
    compiled_speedup_report,
    serving_speedup_report,
)
from repro.data import CityConfig, generate_city, load_city
from repro.eval import Lasso
from repro.nn import (
    AvgPool2d,
    Conv2d,
    ExternalAttention,
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoderBlock,
)

N_REGIONS = 180
D_MODEL = 144


@pytest.fixture(scope="module")
def x_regions():
    rng = np.random.default_rng(0)
    return rng.standard_normal((N_REGIONS, D_MODEL)).astype(np.float32)


class TestAttentionBenchmarks:
    def test_self_attention_forward(self, benchmark, x_regions):
        attn = MultiHeadSelfAttention(D_MODEL, num_heads=4,
                                      rng=np.random.default_rng(1))
        x = Tensor(x_regions)
        result = benchmark(lambda: attn(x))
        assert result.shape == (N_REGIONS, D_MODEL)

    def test_self_attention_forward_backward(self, benchmark, x_regions):
        attn = MultiHeadSelfAttention(D_MODEL, num_heads=4,
                                      rng=np.random.default_rng(1))

        def step():
            attn.zero_grad()
            x = Tensor(x_regions, requires_grad=True)
            (attn(x) ** 2.0).sum().backward()
            return x.grad

        assert benchmark(step) is not None

    def test_encoder_block_forward_backward(self, benchmark, x_regions):
        block = TransformerEncoderBlock(D_MODEL, num_heads=4, dropout=0.0,
                                        rng=np.random.default_rng(1))

        def step():
            block.zero_grad()
            x = Tensor(x_regions, requires_grad=True)
            (block(x) ** 2.0).sum().backward()
            return x.grad

        assert benchmark(step) is not None

    def test_external_attention_scales_linearly(self, benchmark):
        # The InterAFL argument: external attention avoids the n×n matrix.
        rng = np.random.default_rng(1)
        ext = ExternalAttention(D_MODEL, memory_size=72, rng=rng)
        big = Tensor(rng.standard_normal((4 * N_REGIONS, 3, D_MODEL)).astype(np.float32))
        result = benchmark(lambda: ext(big))
        assert result.shape == (4 * N_REGIONS, 3, D_MODEL)


class TestConvBenchmarks:
    def test_region_coefficient_conv(self, benchmark):
        # IntraAFL's Conv2D over the n×n attention coefficients (Eq. 13).
        rng = np.random.default_rng(2)
        conv = Conv2d(1, 32, kernel_size=3, rng=rng)
        pool = AvgPool2d(kernel_size=3)
        coeff = Tensor(rng.random((1, N_REGIONS, N_REGIONS)).astype(np.float32))
        result = benchmark(lambda: pool(conv(coeff)))
        assert result.shape == (32, N_REGIONS, N_REGIONS)


class TestCompiledStepBenchmarks:
    def test_compiled_step_speedup_nyc360(self, benchmark):
        """Compiled-vs-eager training step at paper scale (nyc_360,
        n=360, d=144, fig7 conv_channels): twin models from one seed,
        per-epoch wall-clock of an eager tape step vs a plan replay.

        Asserts final-embedding parity ≤1e-8 in float64 (the acceptance
        bound) plus the ≥2x per-epoch speedup gate.  Skipped entirely
        under ``--benchmark-disable`` (the every-push CI smoke): the
        parity half is already locked down by the tier-1 compiled-parity
        suite, so the smoke should not pay a minute of twin training.
        The nightly full benchmark run enforces the gate and archives
        the measured numbers in the pytest-benchmark JSON
        (``extra_info["compiled"]``).  Measured on a dedicated core this
        lands around 2.5x; shared CI runners relax the gate through
        ``REPRO_COMPILED_SPEEDUP_GATE`` (noisy-neighbor contention can
        cost 10–20% of wall-clock).
        """
        from bench_utils import run_once

        if not benchmark.enabled:
            # ~1 min of twin nyc_360 training buys nothing under
            # --benchmark-disable: the parity half is already locked down
            # by tests/core/test_compiled_parity.py in tier-1.
            pytest.skip("timing-gated benchmark; parity covered in tier-1")
        city = load_city("nyc_360", seed=7)
        config = HAFusionConfig.for_city("nyc_360", conv_channels=16)
        report = run_once(benchmark, compiled_speedup_report, city,
                          config, seed=7, epochs=5)
        benchmark.extra_info["compiled"] = report
        print("\ncompiled step report:", report)
        assert report["final_embedding_max_abs_diff"] <= 1e-8
        assert report["max_loss_diff"] <= 1e-6
        assert report["plan_forward_ops"] > 100
        # The gradient-buffer liveness pool must reclaim >=40% of the
        # PR 2 one-buffer-per-slot footprint on the largest benchmarked
        # city (measured ~89% on nyc_360; this gate is deterministic —
        # byte accounting, not wall-clock).
        assert report["grad_buffer_reduction"] >= 0.4, (
            f"liveness pool reclaimed only "
            f"{report['grad_buffer_reduction']:.0%} "
            f"({report['grad_buffer_bytes']} of "
            f"{report['grad_buffer_bytes_unpooled']} bytes)")
        gate = float(os.environ.get("REPRO_COMPILED_SPEEDUP_GATE", "2.0"))
        assert report["speedup"] >= gate, (
            f"compiled step only {report['speedup']:.2f}x faster than "
            f"eager (eager {report['eager_seconds_per_epoch']:.3f}s, "
            f"compiled {report['compiled_seconds_per_epoch']:.3f}s "
            f"per epoch)")


class TestBackendBenchmarks:
    def test_backend_lowering_speedup_nyc360(self, benchmark):
        """PR 7 training path vs the PR 2/4 compiled path at paper scale
        (nyc_360): ``"v2"`` fused/flattened kernels with the optimizer
        folded into the plan, replayed on ``REPRO_PLAN_BACKEND``
        (serial by default; the nightly backend matrix also runs
        ``threaded``), against the preserved ``"v1"`` kernels with the
        eager clip+Adam loop.

        Gates: ≤1e-8 final-embedding parity in float64 (losses are
        typically bit-equal), the folded update ops present, and the
        per-epoch speedup at ``REPRO_LOWERING_SPEEDUP_GATE``.  The gate
        defaults to 1.0 — never slower than the old path — because on a
        single shared core only the dispatch-level win is available
        (measured ≈1.05x serial on one core); the threaded backend's
        batch-partitioned kernels are the ≥1.5x path on multi-core
        runners, where the nightly matrix raises the gate via the same
        env knob the other speedup gates use.  The report
        (including the top-5 hottest kernels, which
        ``scripts/compare_benchmarks.py`` surfaces in the job summary)
        is archived in ``extra_info["backend"]``.
        """
        from bench_utils import run_once

        if not benchmark.enabled:
            # Parity is locked down by tests/nn/test_plan_backends.py and
            # tests/core/test_compiled_parity.py in tier-1.
            pytest.skip("timing-gated benchmark; parity covered in tier-1")
        city = load_city("nyc_360", seed=7)
        config = HAFusionConfig.for_city("nyc_360", conv_channels=16)
        report = run_once(benchmark, backend_speedup_report, city,
                          config, seed=7, epochs=5)
        benchmark.extra_info["backend"] = report
        print("\nbackend/lowering report:", report)
        assert report["final_embedding_max_abs_diff"] <= 1e-8
        assert report["max_loss_diff"] <= 1e-6
        assert report["update_ops"] > 0, "optimizer was not folded"
        if report["backend"] == "threaded":
            assert report["threaded_ops"] > 0, (
                "threaded backend partitioned no kernels")
        gate = float(os.environ.get("REPRO_LOWERING_SPEEDUP_GATE", "1.0"))
        assert report["speedup"] >= gate, (
            f"fused path only {report['speedup']:.2f}x the previous "
            f"compiled path (baseline "
            f"{report['baseline_seconds_per_epoch']:.3f}s, candidate "
            f"{report['candidate_seconds_per_epoch']:.3f}s per epoch, "
            f"backend={report['backend']})")


class TestServingBenchmarks:
    def test_serving_speedup_nyc360(self, benchmark):
        """Eager vs compiled ``batched_embed`` at paper scale (nyc_360,
        n=360, fig7 conv_channels): one warm model answering repeated
        embed requests.  The compiled side replays a forward-only
        :class:`~repro.nn.compile.InferencePlan` (the record epoch is
        excluded, exactly as a warm server runs).

        Gates: ≥2x regions/sec over the eager tape
        (``REPRO_SERVING_SPEEDUP_GATE`` relaxes it on shared runners),
        embedding parity ≤1e-8 in float64, and the activation liveness
        pool holding ≥40% fewer slot bytes than one-buffer-per-slot
        (measured ≈2.9x / ≈91% on a dedicated core).  Skipped under
        ``--benchmark-disable``: the parity and pool halves are already
        locked down by ``tests/core/test_inference_plan.py``.
        """
        from bench_utils import run_once

        if not benchmark.enabled:
            pytest.skip("timing-gated benchmark; parity covered in tier-1")
        city = load_city("nyc_360", seed=7)
        config = HAFusionConfig.for_city("nyc_360", conv_channels=16)
        report = run_once(benchmark, serving_speedup_report, [city],
                          config, seed=7, repeats=5)
        benchmark.extra_info["serving"] = report
        print("\nserving report:", report)
        assert report["max_abs_diff"] <= 1e-8
        assert report["plan_fused_chains"] > 0
        assert report["slot_reduction"] >= 0.4, (
            f"activation pool reclaimed only {report['slot_reduction']:.0%}")
        gate = float(os.environ.get("REPRO_SERVING_SPEEDUP_GATE", "2.0"))
        assert report["speedup"] >= gate, (
            f"compiled serving only {report['speedup']:.2f}x eager "
            f"({report['compiled_regions_per_sec']:.0f} vs "
            f"{report['eager_regions_per_sec']:.0f} regions/sec)")


class TestEvalBenchmarks:
    def test_lasso_fit_paper_shape(self, benchmark):
        # The downstream predictor: n = 180 regions, d = 144 embedding.
        rng = np.random.default_rng(3)
        x = rng.standard_normal((N_REGIONS, D_MODEL))
        y = x[:, 0] * 100 + rng.normal(0, 10, N_REGIONS)
        model = benchmark(lambda: Lasso(alpha=1.0).fit(x, y))
        assert model.coef_ is not None


class TestDataBenchmarks:
    def test_city_generation(self, benchmark):
        config = CityConfig(name="bench", n_regions=77, total_trips=3.4e6,
                            poi_total=50_000)
        city = benchmark.pedantic(lambda: generate_city(config, seed=0),
                                  rounds=1, iterations=1, warmup_rounds=0)
        assert city.n_regions == 77
