"""Microbenchmarks for the nn substrate and eval primitives.

These measure the building blocks whose costs dominate the experiment
pipelines: attention forward/backward at paper-scale (n = 180, d = 144),
the IntraAFL convolution path, external attention's linear-in-n cost
(the paper's O(n·d·dm) vs O(n²·d) argument, Sec. VI-F), coordinate-
descent Lasso, and synthetic-city generation.
"""

import numpy as np
import pytest

from repro.data import CityConfig, generate_city
from repro.eval import Lasso
from repro.nn import (
    AvgPool2d,
    Conv2d,
    ExternalAttention,
    MultiHeadSelfAttention,
    Tensor,
    TransformerEncoderBlock,
)

N_REGIONS = 180
D_MODEL = 144


@pytest.fixture(scope="module")
def x_regions():
    rng = np.random.default_rng(0)
    return rng.standard_normal((N_REGIONS, D_MODEL)).astype(np.float32)


class TestAttentionBenchmarks:
    def test_self_attention_forward(self, benchmark, x_regions):
        attn = MultiHeadSelfAttention(D_MODEL, num_heads=4,
                                      rng=np.random.default_rng(1))
        x = Tensor(x_regions)
        result = benchmark(lambda: attn(x))
        assert result.shape == (N_REGIONS, D_MODEL)

    def test_self_attention_forward_backward(self, benchmark, x_regions):
        attn = MultiHeadSelfAttention(D_MODEL, num_heads=4,
                                      rng=np.random.default_rng(1))

        def step():
            attn.zero_grad()
            x = Tensor(x_regions, requires_grad=True)
            (attn(x) ** 2.0).sum().backward()
            return x.grad

        assert benchmark(step) is not None

    def test_encoder_block_forward_backward(self, benchmark, x_regions):
        block = TransformerEncoderBlock(D_MODEL, num_heads=4, dropout=0.0,
                                        rng=np.random.default_rng(1))

        def step():
            block.zero_grad()
            x = Tensor(x_regions, requires_grad=True)
            (block(x) ** 2.0).sum().backward()
            return x.grad

        assert benchmark(step) is not None

    def test_external_attention_scales_linearly(self, benchmark):
        # The InterAFL argument: external attention avoids the n×n matrix.
        rng = np.random.default_rng(1)
        ext = ExternalAttention(D_MODEL, memory_size=72, rng=rng)
        big = Tensor(rng.standard_normal((4 * N_REGIONS, 3, D_MODEL)).astype(np.float32))
        result = benchmark(lambda: ext(big))
        assert result.shape == (4 * N_REGIONS, 3, D_MODEL)


class TestConvBenchmarks:
    def test_region_coefficient_conv(self, benchmark):
        # IntraAFL's Conv2D over the n×n attention coefficients (Eq. 13).
        rng = np.random.default_rng(2)
        conv = Conv2d(1, 32, kernel_size=3, rng=rng)
        pool = AvgPool2d(kernel_size=3)
        coeff = Tensor(rng.random((1, N_REGIONS, N_REGIONS)).astype(np.float32))
        result = benchmark(lambda: pool(conv(coeff)))
        assert result.shape == (32, N_REGIONS, N_REGIONS)


class TestEvalBenchmarks:
    def test_lasso_fit_paper_shape(self, benchmark):
        # The downstream predictor: n = 180 regions, d = 144 embedding.
        rng = np.random.default_rng(3)
        x = rng.standard_normal((N_REGIONS, D_MODEL))
        y = x[:, 0] * 100 + rng.normal(0, 10, N_REGIONS)
        model = benchmark(lambda: Lasso(alpha=1.0).fit(x, y))
        assert model.coef_ is not None


class TestDataBenchmarks:
    def test_city_generation(self, benchmark):
        config = CityConfig(name="bench", n_regions=77, total_trips=3.4e6,
                            poi_total=50_000)
        city = benchmark.pedantic(lambda: generate_city(config, seed=0),
                                  rounds=1, iterations=1, warmup_rounds=0)
        assert city.n_regions == 77
