"""Serving-frontend trace-replay benchmark: end-to-end socket latency.

Replays a mixed trace — two cities (chi n=77, nyc n=180), full views
and contiguous shards, dtype-mixed (float64/float32), with region
subsets — through the NDJSON frontend and a 2-worker
:class:`ServingFleet` warmed from a shared :class:`WarmupPack`, and
records into the nightly pytest-benchmark JSON:

- ``extra_info["frontend"]["latency"]`` — per-request p50/p99 (diffed
  night-over-night by ``scripts/compare_benchmarks.py`` as
  lower-is-better gauges);
- ``extra_info["frontend"]["regions_per_sec"]`` — aggregate throughput
  over the replay window (higher-is-better gauge).

Correctness rides along as hard gates: the socket responses must be
**bit-identical** to the in-process :meth:`EmbeddingService.run` on the
same trace, served with **zero record epochs** across the fleet.
"""

import numpy as np
import pytest

from repro.core import HAFusionConfig, shard_viewset
from repro.data import load_city
from repro.serving import (
    EmbedRequest,
    EmbeddingService,
    FlushPolicy,
    FrontendThread,
    ServingFleet,
    ServingFrontend,
    WarmupPack,
)

_SEED = 7
#: High max_wait: the client's explicit ``flush`` op dispatches
#: stragglers, so co-batch compositions are deterministic (and identical
#: to the in-process reference), not timing-dependent.
_POLICY = FlushPolicy(max_batch=4, max_wait=30.0)


def build_trace_service() -> EmbeddingService:
    """Deterministic service every fleet worker (and the in-process
    reference) reconstructs independently — module-level so it pickles
    under any multiprocessing start method."""
    traffic = [load_city("chi", seed=_SEED).views(),
               load_city("nyc", seed=_SEED).views()]
    config = HAFusionConfig.for_city("nyc", conv_channels=4, dropout=0.0)
    return EmbeddingService.build(traffic, config, seed=_SEED,
                                  policy=_POLICY)


def make_trace() -> list[EmbedRequest]:
    """Mixed-city/dtype/subset replay trace.

    Only default (model) and float32 dtypes: an explicit float64 request
    would co-batch with default-dtype ones in-process but not at the
    frontend (which labels the default bucket ``"model"``), changing
    compositions without changing values.
    """
    chi = load_city("chi", seed=_SEED).views()
    nyc = load_city("nyc", seed=_SEED).views()
    requests = [EmbedRequest(chi, name="chi"),
                EmbedRequest(nyc, name="nyc")]
    for i, shard in enumerate(shard_viewset(chi, 4)):
        requests.append(EmbedRequest(
            shard, dtype="float32" if i % 2 else None,
            region_subset=[0, 2] if i == 3 else None,
            name=f"chi/{i}"))
    for i, shard in enumerate(shard_viewset(nyc, 5)):
        requests.append(EmbedRequest(
            shard, dtype="float32" if i % 2 else None,
            region_subset=[1, 5, 11] if i == 0 else None,
            name=f"nyc/{i}"))
    return requests


class TestFrontendTraceBenchmark:
    def test_frontend_trace_replay(self, benchmark, tmp_path):
        """Socket replay of the mixed trace against a warm 2-worker
        fleet.  Skipped under ``--benchmark-disable`` (the every-push CI
        smoke): the correctness half is locked down by
        ``tests/serving/test_frontend.py`` in tier-1 and by the
        ``serving-smoke`` job's ``frontend_smoke.py`` cross-process run;
        only the latency/throughput gauges need timing.
        """
        from bench_utils import run_once

        if not benchmark.enabled:
            pytest.skip("timing-gated benchmark; parity covered in tier-1")

        pack_dir = tmp_path / "warm_pack"
        service = build_trace_service()
        # A minimal grid: the reference replay below records every
        # serve-time co-batch composition into the pack directory anyway.
        WarmupPack.build(service, shape_grid=[(1, service.n_max)],
                         directory=pack_dir)
        reference = service.run(make_trace())

        fleet = ServingFleet(build_trace_service, n_workers=2,
                             pack_dir=pack_dir)
        frontend = ServingFrontend(
            fleet, n_max=service.n_max, view_dims=service.view_dims,
            view_names=("mobility", "poi", "landuse"), policy=_POLICY)
        thread = FrontendThread(frontend).start()
        try:
            with thread.client() as client:
                responses = run_once(
                    benchmark, lambda: client.embed_many(make_trace()))
                stats = client.stats()
        finally:
            thread.stop()

        # Hard gates: warm path, bit-identical to in-process serving.
        assert stats["fleet"]["record_epochs"] == 0, (
            f"fleet paid {stats['fleet']['record_epochs']} record epochs "
            f"on a warmed trace")
        assert len(responses) == len(reference)
        for got, want in zip(responses, reference):
            assert got.embeddings.dtype == want.embeddings.dtype
            assert np.array_equal(got.embeddings, want.embeddings), (
                f"{got.name}: socket embeddings drifted from in-process")

        # The benchmark runs fault-free, so supervision must be pure
        # overhead: any crash/retry/deadline here means the timing above
        # measured recovery work, not the serving path.
        fleet_stats = stats["fleet"]
        assert fleet_stats["crashes"] == 0
        assert fleet_stats["retries"] == 0
        assert fleet_stats["failed_batches"] == 0
        assert stats["deadline_failures"] == 0

        latency = stats["latency"]
        benchmark.extra_info["frontend"] = {
            "served": stats["served"],
            "regions": stats["regions"],
            "regions_per_sec": stats["regions_per_sec"],
            "latency": latency,
            "record_epochs": stats["fleet"]["record_epochs"],
            # Night-over-night evidence that the supervised fleet stayed
            # healthy while the latency gauges were taken.
            "supervision": {
                "crashes": fleet_stats["crashes"],
                "retries": fleet_stats["retries"],
                "respawns": fleet_stats["respawns"],
                "failed_batches": fleet_stats["failed_batches"],
                "deadline_failures": stats["deadline_failures"],
            },
        }
        print(f"\nfrontend trace: {stats['served']} requests, "
              f"{stats['regions_per_sec']:.0f} regions/s, "
              f"p50 {latency['p50_latency'] * 1e3:.1f}ms, "
              f"p99 {latency['p99_latency'] * 1e3:.1f}ms")
